"""Shared machine-readable trajectory state for the benchmark suite.

This lives outside ``conftest.py`` on purpose: pytest imports the conftest
under its own module name while benchmark modules import
``benchmarks.conftest`` as a package module, which yields *two* module
instances.  Keeping the accumulator here — a single module in
``sys.modules`` — makes ``emit_bench`` from either side land in the same
dict the session-finish writer drains.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Callable, Dict, Optional, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Allow quick smoke runs of the benchmark suite: REPRO_BENCH_SCALE=small
SCALE = os.environ.get("REPRO_BENCH_SCALE", "normal")

#: experiment name -> accumulated BENCH_<experiment>.json payload
_BENCH_JSON: Dict[str, dict] = {}


def emit_bench(
    experiment: str,
    *,
    timings_ms: Optional[Dict[str, float]] = None,
    counters: Optional[Dict[str, float]] = None,
    tables: Optional[Dict[str, dict]] = None,
    asserts: Optional[Dict[str, float]] = None,
) -> None:
    """Accumulate results for ``BENCH_<experiment>.json`` (written at session
    end).  *timings_ms* are median-of-k wall-clock medians, *counters* the
    deterministic model counters the experiment asserts on, *tables* the
    scaling tables, *asserts* the floors/ceilings the experiment enforced
    (e.g. ``{"rebuild_speedup_min": 10}``)."""
    rec = _BENCH_JSON.setdefault(
        experiment,
        {
            "schema": 1,
            "experiment": experiment,
            "scale": SCALE,
            "timings_ms": {},
            "counters": {},
            "tables": {},
            "asserts": {},
        },
    )
    for key, update in (
        ("timings_ms", timings_ms),
        ("counters", counters),
        ("tables", tables),
        ("asserts", asserts),
    ):
        if update:
            rec[key].update(update)


def timed_median(fn: Callable[[], object], k: int = 5, warmup: int = 1) -> Tuple[float, object]:
    """Run *fn* ``warmup`` untimed times then ``k`` timed times; return
    ``(median_ms, last_result)``.  The warmup round absorbs one-shot costs
    (allocator page faults, lazy caches) that are not the steady-state claim
    the large-tier assertions are about."""
    result = None
    for _ in range(warmup):
        result = fn()
    samples = []
    for _ in range(k):
        t0 = time.perf_counter()
        result = fn()
        samples.append((time.perf_counter() - t0) * 1000.0)
    samples.sort()
    return samples[len(samples) // 2], result


def write_bench_files() -> None:
    """Write one ``BENCH_<experiment>.json`` per accumulated experiment."""
    if os.environ.get("REPRO_BENCH_JSON", "1") == "0" or not _BENCH_JSON:
        return
    outdir = pathlib.Path(os.environ.get("REPRO_BENCH_JSON_DIR", str(REPO_ROOT)))
    outdir.mkdir(parents=True, exist_ok=True)
    for experiment, rec in sorted(_BENCH_JSON.items()):
        path = outdir / f"BENCH_{experiment}.json"
        path.write_text(json.dumps(rec, indent=2, sort_keys=True) + "\n")
