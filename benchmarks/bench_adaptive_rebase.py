"""E8 — adaptive absorb-mode maintenance: segment-EWMA-triggered rebases.

Documented in ``docs/benchmarks.md`` (E8).

Claim: with ``d_maintenance="absorb"`` the base tree of ``D`` is frozen, so
per-query target decompositions grow without bound as the maintained tree
diverges; the auto-rebase policy (``rebase_segment_threshold``) bounds them by
rebasing ``D`` on the current tree exactly when the per-update segment EWMA
crosses the threshold.  The harness drives ``sustained_churn`` and asserts

* at least one rebase fires and every rebase drops the divergence EWMA,
* the mean target segments per query stays below the threshold (while the
  never-rebase configuration's mean exceeds the auto policy's),
* the maintained tree is byte-identical to the classic per-update-rebuild
  driver throughout — the policy changes the cost, never the output.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table, scale_sizes
from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.metrics.counters import MetricsRecorder
from repro.workloads.scenarios import build_scenario

THRESHOLD = 3
UPDATES = 100
AMORTIZED_K = 10


def _drive_stepwise(graph, updates, **kwargs):
    """Apply updates one by one, tracking per-update segment means and the
    EWMA on both sides of every rebase."""
    metrics = MetricsRecorder("bench", strict=True)
    dyn = FullyDynamicDFS(graph, metrics=metrics, **kwargs)
    backend = dyn._backend
    prev = metrics.as_dict()
    ewma_drops = []  # (ewma before rebase update, ewma after it)
    for update in updates:
        ewma_before = backend.structure.avg_target_segments()
        dyn.apply(update)
        delta = metrics.snapshot_delta(prev)
        prev = metrics.as_dict()
        if delta.get("d_rebases", 0):
            ewma_drops.append((ewma_before, backend.structure.avg_target_segments()))
    total_queries = max(metrics["queries"], 1)
    return dyn, metrics, metrics["d_target_segments"] / total_queries, ewma_drops


@pytest.mark.benchmark(group="E8-adaptive-rebase")
def test_auto_rebase_bounds_segments_per_query(benchmark):
    sizes = scale_sizes([200], [96])
    rebases, auto_means, norebase_means, pinned_triggers = [], [], [], []
    for n in sizes:
        scenario = build_scenario("sustained_churn", n=n, seed=2, updates=UPDATES)
        updates = scenario.updates[:UPDATES]

        classic = FullyDynamicDFS(scenario.graph, rebuild_every=1)
        classic.apply_all(updates)

        auto, auto_metrics, auto_mean, drops = _drive_stepwise(
            scenario.graph,
            updates,
            rebuild_every=AMORTIZED_K,
            d_maintenance="absorb",
            rebase_segment_threshold=THRESHOLD,
        )
        norebase, norebase_metrics, norebase_mean, _ = _drive_stepwise(
            scenario.graph,
            updates,
            rebuild_every=AMORTIZED_K,
            d_maintenance="absorb",
            rebase_segment_threshold=10**9,  # policy disabled
        )

        # Identical trees under every policy.
        assert auto.parent_map() == classic.parent_map(), f"auto diverged (n={n})"
        assert norebase.parent_map() == classic.parent_map(), f"norebase diverged (n={n})"

        # The policy fires, and every rebase drops the divergence EWMA.  The
        # baseline must actually be rebase-free (its huge segment threshold
        # does not disable the pinned-side-list trigger).
        assert norebase_metrics["d_rebases"] == 0, "baseline rebased via the pinned trigger"
        assert auto_metrics["d_rebases"] >= 1, f"expected >=1 rebase (n={n})"
        assert drops and all(after < before for before, after in drops), drops

        # Mean segments per query stays below the threshold; without rebases
        # the same workload pays more per query.
        assert auto_mean < THRESHOLD, f"mean segments {auto_mean:.2f} >= threshold (n={n})"
        assert auto_mean <= norebase_mean, (auto_mean, norebase_mean)

        rebases.append(auto_metrics["d_rebases"])
        auto_means.append(round(auto_mean, 2))
        norebase_means.append(round(norebase_mean, 2))
        pinned_triggers.append(auto_metrics["d_rebase_trigger_pinned"])

    record_table(
        benchmark,
        "E8_auto_rebase",
        sizes,
        {
            "rebases": rebases,
            "auto_mean_segments_per_query": auto_means,
            "norebase_mean_segments_per_query": norebase_means,
            "pinned_triggered_rebases": pinned_triggers,
        },
    )

    scenario = build_scenario("sustained_churn", n=sizes[0], seed=2, updates=UPDATES)

    def run():
        dyn = FullyDynamicDFS(
            scenario.graph,
            rebuild_every=AMORTIZED_K,
            d_maintenance="absorb",
            rebase_segment_threshold=THRESHOLD,
        )
        dyn.apply_all(scenario.updates[:20])

    benchmark(run)
