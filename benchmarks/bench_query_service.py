"""E12 — MVCC snapshot query service: batched read throughput and staleness.

Documented in ``docs/benchmarks.md`` (E12).

Claim 1 (throughput): answering a large batch of LCA queries through one
vectorized :class:`~repro.service.snapshot.TreeSnapshot` pass is **>= 10x**
the queries/sec of the per-query inline loop on the dict driver's service at
n = 10^5 — with byte-identical answers and byte-identical published parent
maps across backends.  (The write side stays at version 0 here: python
rerooting at n = 10^5 is minutes per update, which is exactly why reads go
through snapshots instead of the driver.)

Claim 2 (staleness): under read/write churn the MVCC accounting is exact and
*policy-invariant*: a reader answering K queries against a snapshot held
across a burst of B commits records ``K * B`` staleness updates and its
version trails ``committed_version`` by exactly B — across ``rebuild_every``
policies {1, 8, auto}, whose only visible difference is the write-side cost
(``d_builds``, wall-clock); published maps match the dict rebuild-every-1
reference after every burst.

Results are persisted to ``BENCH_E12.json`` and CI compares the file against
the committed trajectory with ``tools/bench_compare.py``.
"""

from __future__ import annotations

import random
import time

import pytest

np = pytest.importorskip("numpy")

from benchmarks.conftest import emit_bench, record_table, scale_sizes, timed_median
from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.metrics.counters import MetricsRecorder
from repro.graph.generators import barabasi_albert_graph
from repro.service import DFSTreeService
from repro.workloads.updates import edge_churn

READ_SPEEDUP_MIN = 10.0


@pytest.mark.benchmark(group="E12-query-service")
def test_batched_snapshot_reads_beat_inline_dict(benchmark):
    n = scale_sizes([100_000], [20_000])[0]
    graph = barabasi_albert_graph(n, 3, seed=0)
    dict_metrics = MetricsRecorder("e12_dict", strict=True)
    array_metrics = MetricsRecorder("e12_array", strict=True)
    dyn_d = FullyDynamicDFS(graph.copy(), backend="dict", metrics=dict_metrics)
    svc_d = DFSTreeService(dyn_d, metrics=dict_metrics)
    dyn_a = FullyDynamicDFS(graph.copy(), backend="array", metrics=array_metrics)
    svc_a = DFSTreeService(dyn_a, metrics=array_metrics)
    # Byte-identical published state across backends (version 0).
    assert svc_d.snapshot().parent_map() == svc_a.snapshot().parent_map()

    q = max(n // 2, 1)
    rng = random.Random(7)
    verts = list(graph.vertices())
    avs = [verts[rng.randrange(len(verts))] for _ in range(q)]
    bvs = [verts[rng.randrange(len(verts))] for _ in range(q)]

    # Per-query inline reads on the dict driver's service (the baseline an
    # application gets without the batch front).
    t_inline, ans_inline = timed_median(
        lambda: [svc_d.lca(a, b)[0] for a, b in zip(avs, bvs)], k=3
    )
    # One vectorized snapshot pass through the array driver's service.
    t_batch, (ans_batch, version) = timed_median(
        lambda: svc_a.lca_batch(avs, bvs), k=3
    )
    assert version == 0
    assert ans_inline == ans_batch  # byte-identical LCAs
    speedup = t_inline / t_batch
    assert speedup >= READ_SPEEDUP_MIN, (
        f"E12: batched snapshot reads only {speedup:.1f}x over per-query "
        f"inline dict reads (floor {READ_SPEEDUP_MIN}x) at n={n}"
    )

    qps_inline = q / (t_inline / 1e3)
    qps_batched = q / (t_batch / 1e3)
    record_table(
        benchmark,
        "E12_read_throughput",
        [n],
        {
            "read_speedup": [round(speedup, 1)],
            "queries_per_sec_inline": [round(qps_inline, 0)],
            "queries_per_sec_batched": [round(qps_batched, 0)],
        },
    )
    emit_bench(
        "E12",
        timings_ms={
            "inline_dict_reads": round(t_inline, 3),
            "batched_snapshot_reads": round(t_batch, 3),
        },
        counters={
            "n": n,
            "num_edges": graph.num_edges,
            "queries": q,
            # timed_median runs 1 warmup + 3 timed rounds -> 4 batches
            "query_batches": array_metrics["query_batches"],
            "max_query_batch_size": array_metrics["max_query_batch_size"],
        },
        asserts={"read_speedup_min": READ_SPEEDUP_MIN},
    )
    benchmark(lambda: svc_a.lca_batch(avs, bvs))


@pytest.mark.benchmark(group="E12-query-service")
def test_staleness_exact_across_rebuild_policies(benchmark):
    n = scale_sizes([2_000], [512])[0]
    bursts, burst_size, reads_per_burst = 6, 8, 1_000
    graph = barabasi_albert_graph(n, 3, seed=2)
    updates = edge_churn(graph, bursts * burst_size, seed=3)

    # Dict rebuild-every-1 oracle: the published map after every burst.
    reference = FullyDynamicDFS(graph.copy(), backend="dict", rebuild_every=1)
    ref_maps = []
    for b in range(bursts):
        for u in updates[b * burst_size : (b + 1) * burst_size]:
            reference.apply(u)
        ref_maps.append(reference.tree.parent_map())

    rng = random.Random(13)
    verts = list(graph.vertices())
    avs = [verts[rng.randrange(len(verts))] for _ in range(reads_per_burst)]
    bvs = [verts[rng.randrange(len(verts))] for _ in range(reads_per_burst)]

    policies = [("1", 1), ("8", 8), ("auto", None)]
    table = {"d_builds": [], "snapshots_published": [], "held_staleness_updates": []}
    timings = {}
    last_svc = None
    for label, rebuild_every in policies:
        driver_metrics = MetricsRecorder(f"e12_driver_{label}", strict=True)
        svc_metrics = MetricsRecorder(f"e12_svc_{label}", strict=True)
        dyn = FullyDynamicDFS(
            graph.copy(), backend="array", rebuild_every=rebuild_every,
            metrics=driver_metrics,
        )
        svc = DFSTreeService(dyn, metrics=svc_metrics)
        t0 = time.perf_counter()
        for b in range(bursts):
            held = svc.snapshot()
            staleness_before = svc_metrics["snapshot_staleness_updates"]
            for u in updates[b * burst_size : (b + 1) * burst_size]:
                dyn.apply(u)
            # published map == dict reference after every burst
            assert svc.version == svc.committed_version == (b + 1) * burst_size
            assert svc.snapshot().parent_map() == ref_maps[b], (label, b)
            # reader pinned on the pre-burst snapshot: staleness exactly B
            held_answers, held_version = svc.lca_batch(avs, bvs, snapshot=held)
            assert held_version == svc.committed_version - burst_size
            assert (
                svc_metrics["snapshot_staleness_updates"] - staleness_before
                == reads_per_burst * burst_size
            )
            # reader on the fresh snapshot: zero staleness, current version
            fresh_answers, fresh_version = svc.lca_batch(avs, bvs)
            assert fresh_version == svc.committed_version
            assert len(fresh_answers) == len(held_answers) == reads_per_burst
        timings[f"churn_and_reads_ms_{label}"] = round(
            (time.perf_counter() - t0) * 1e3, 3
        )
        table["d_builds"].append(driver_metrics["d_builds"])
        table["snapshots_published"].append(svc_metrics["snapshots_published"])
        table["held_staleness_updates"].append(
            svc_metrics["snapshot_staleness_updates"]
        )
        last_svc = svc

    # MVCC accounting is policy-invariant; only the write side differs.
    assert len(set(table["snapshots_published"])) == 1
    assert len(set(table["held_staleness_updates"])) == 1
    record_table(
        benchmark,
        "E12_policy_staleness",
        [1, 8, 0],  # rebuild_every (0 = auto)
        table,
    )
    emit_bench(
        "E12",
        timings_ms=timings,
        counters={
            "staleness_n": n,
            "bursts": bursts,
            "burst_size": burst_size,
            "reads_per_burst": reads_per_burst,
        },
    )
    benchmark(lambda: last_svc.lca_batch(avs, bvs))
