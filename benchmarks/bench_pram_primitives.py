"""E6 — Theorems 4–7: depth/work scaling of the PRAM substrate.

Documented in ``docs/benchmarks.md`` (E6).

Claims reproduced in shape: prefix sums, list ranking, Euler-tour tree functions
and LCA preprocessing all run in ``O(log n)``/``O(log^2 n)`` simulated depth;
their metered depth must grow additively (by a constant) when the input doubles,
not multiplicatively.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table, scale_sizes
from repro.graph.generators import random_tree
from repro.graph.traversal import static_dfs_tree
from repro.pram.lca_parallel import ParallelLCA
from repro.pram.machine import PRAM
from repro.pram.primitives import parallel_prefix_sums, pointer_jumping_list_ranking
from repro.pram.sort import parallel_merge_sort
from repro.pram.tree_functions import parallel_tree_functions
from repro.tree.dfs_tree import DFSTree


@pytest.mark.benchmark(group="E6-pram")
def test_primitive_depth_scaling(benchmark):
    sizes = scale_sizes([256, 1024, 4096], [128, 512])
    scan_depth, rank_depth, sort_depth, tree_fn_depth, lca_depth = [], [], [], [], []
    for n in sizes:
        pram = PRAM()
        parallel_prefix_sums(pram, [1] * n)
        scan_depth.append(pram.depth)

        pram = PRAM()
        successor = list(range(1, n)) + [-1]
        pointer_jumping_list_ranking(pram, successor)
        rank_depth.append(pram.depth)

        pram = PRAM()
        parallel_merge_sort(pram, list(reversed(range(n))))
        sort_depth.append(pram.depth)

        parent = static_dfs_tree(random_tree(n, seed=1), 0)
        pram = PRAM()
        parallel_tree_functions(pram, parent)
        tree_fn_depth.append(pram.depth)

        tree = DFSTree(parent, root=0)
        pram = PRAM()
        ParallelLCA(pram, tree)
        lca_depth.append(pram.depth)

    record_table(
        benchmark,
        "E6_depth_scaling",
        sizes,
        {
            "prefix_sums_depth": scan_depth,
            "list_ranking_depth": rank_depth,
            "merge_sort_depth": sort_depth,
            "euler_tree_functions_depth": tree_fn_depth,
            "lca_preprocessing_depth": lca_depth,
        },
    )
    # Doubling the input must only add a constant number of rounds for the
    # O(log n) primitives.
    assert scan_depth[-1] - scan_depth[0] <= 2 * (len(sizes) - 1) * 4
    assert rank_depth[-1] - rank_depth[0] <= 2 * (len(sizes) - 1) * 4

    n = sizes[-1]
    benchmark(lambda: parallel_prefix_sums(PRAM(), [1] * n))
