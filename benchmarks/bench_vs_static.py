"""E7 — dynamic update vs full static recomputation (the paper's motivation).

Documented in ``docs/benchmarks.md`` (E7).

The dynamic algorithm touches only the affected subtrees plus ``D`` maintenance,
while the baseline re-runs the ``O(m + n)`` static DFS after every update.  The
harness reports wall-clock per update for both as ``m`` grows and checks the
qualitative claim: the dynamic algorithm's advantage grows with density for
updates that touch small subtrees.

A second harness restores the *sequential-baseline separation* on the
adversarial comb: the spine deletions of ``comb_with_tip_back_edges`` (whose
tip back edges survive the canonical minimum-postorder source re-anchoring,
unlike the tip-to-spine-start edges of ``comb_with_back_edges``) force the
sequential rerooting engine through a Θ(teeth) dependency chain per update,
while the parallel engine's round count stays poly-logarithmic.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import record_table, scale_sizes
from repro.baselines.static_recompute import StaticRecomputeDFS
from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.graph.generators import gnp_random_graph
from repro.metrics.counters import MetricsRecorder
from repro.workloads.scenarios import build_scenario
from repro.workloads.updates import edge_churn


def _mean_update_seconds(driver, updates):
    start = time.perf_counter()
    driver.apply_all(updates)
    return (time.perf_counter() - start) / len(updates)


@pytest.mark.benchmark(group="E7-vs-static")
def test_dynamic_vs_static_recompute(benchmark):
    n = scale_sizes([1500], [300])[0]
    densities = scale_sizes([2, 4, 8, 16], [2, 4])
    dyn_times, static_times, ratio = [], [], []
    for avg_deg in densities:
        graph = gnp_random_graph(n, avg_deg / n, seed=4, connected=True)
        updates = edge_churn(graph, 6, seed=8)
        dyn = FullyDynamicDFS(graph, engine="parallel")
        static = StaticRecomputeDFS(graph)
        d = _mean_update_seconds(dyn, updates)
        s = _mean_update_seconds(static, updates)
        dyn_times.append(round(d, 5))
        static_times.append(round(s, 5))
        ratio.append(round(s / d, 3) if d else float("inf"))

    record_table(
        benchmark,
        "E7_seconds_per_update_vs_density",
        [n * d // 2 for d in densities],
        {
            "dynamic_seconds": dyn_times,
            "static_recompute_seconds": static_times,
            "static_over_dynamic": ratio,
        },
    )

    graph = gnp_random_graph(n, densities[-1] / n, seed=4, connected=True)
    dyn = FullyDynamicDFS(graph, engine="parallel")
    u0, v0 = next(iter(graph.edges()))

    def run():
        dyn.delete_edge(u0, v0)
        dyn.insert_edge(u0, v0)

    benchmark(run)


@pytest.mark.benchmark(group="E7-vs-static")
def test_sequential_baseline_separation_on_comb(benchmark):
    """The adversarial comb (tip back edges that survive canonical source
    re-anchoring) separates the engines again: the sequential baseline's
    dependency chain grows linearly with the number of teeth, the parallel
    engine's query rounds stay poly-logarithmic, and both maintain the same
    trees as the static recompute ground truth."""
    sizes = scale_sizes([120, 240, 480], [60, 120])
    seq_chain, par_rounds, ratios = [], [], []
    for n in sizes:
        scenario = build_scenario("adversarial_comb", n=n, updates=4)
        results = {}
        for engine in ("sequential", "parallel"):
            metrics = MetricsRecorder(engine, strict=True)
            dyn = FullyDynamicDFS(scenario.graph, engine=engine, metrics=metrics)
            dyn.apply_all(scenario.updates)
            # The baseline follows a different rerooting order, so its tree
            # may legitimately differ — both must be valid DFS forests.
            assert dyn.is_valid(), f"{engine} engine produced an invalid tree (n={n})"
            results[engine] = (dyn.parent_map(), metrics)
        static = StaticRecomputeDFS(scenario.graph)
        static.apply_all(scenario.updates)
        assert static.is_valid()
        chain = results["sequential"][1]["max_sequential_chain_depth"]
        rounds = results["parallel"][1]["query_rounds"] / max(
            results["parallel"][1]["updates"], 1
        )
        seq_chain.append(chain)
        par_rounds.append(round(rounds, 1))
        ratios.append(round(chain / max(rounds, 1), 2))

    record_table(
        benchmark,
        "E7_sequential_separation_on_comb",
        sizes,
        {
            "sequential_chain_depth": seq_chain,
            "parallel_query_rounds_per_update": par_rounds,
            "chain_over_rounds": ratios,
        },
    )
    # The separation the back-edge comb is built for: the chain grows with
    # the input, the parallel rounds barely move, so the ratio must widen.
    assert seq_chain[-1] > seq_chain[0]
    assert ratios[-1] > ratios[0]

    scenario = build_scenario("adversarial_comb", n=sizes[0], updates=2)
    dyn = FullyDynamicDFS(scenario.graph, engine="parallel")

    def run():
        dyn.apply_all(scenario.updates[:2])

    benchmark(run)
