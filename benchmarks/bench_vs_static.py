"""E7 — dynamic update vs full static recomputation (the paper's motivation).

The dynamic algorithm touches only the affected subtrees plus ``D`` maintenance,
while the baseline re-runs the ``O(m + n)`` static DFS after every update.  The
harness reports wall-clock per update for both as ``m`` grows and checks the
qualitative claim: the dynamic algorithm's advantage grows with density for
updates that touch small subtrees.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import record_table, scale_sizes
from repro.baselines.static_recompute import StaticRecomputeDFS
from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.graph.generators import gnp_random_graph
from repro.workloads.updates import edge_churn


def _mean_update_seconds(driver, updates):
    start = time.perf_counter()
    driver.apply_all(updates)
    return (time.perf_counter() - start) / len(updates)


@pytest.mark.benchmark(group="E7-vs-static")
def test_dynamic_vs_static_recompute(benchmark):
    n = scale_sizes([1500], [300])[0]
    densities = scale_sizes([2, 4, 8, 16], [2, 4])
    dyn_times, static_times, ratio = [], [], []
    for avg_deg in densities:
        graph = gnp_random_graph(n, avg_deg / n, seed=4, connected=True)
        updates = edge_churn(graph, 6, seed=8)
        dyn = FullyDynamicDFS(graph, engine="parallel")
        static = StaticRecomputeDFS(graph)
        d = _mean_update_seconds(dyn, updates)
        s = _mean_update_seconds(static, updates)
        dyn_times.append(round(d, 5))
        static_times.append(round(s, 5))
        ratio.append(round(s / d, 3) if d else float("inf"))

    record_table(
        benchmark,
        "E7_seconds_per_update_vs_density",
        [n * d // 2 for d in densities],
        {
            "dynamic_seconds": dyn_times,
            "static_recompute_seconds": static_times,
            "static_over_dynamic": ratio,
        },
    )

    graph = gnp_random_graph(n, densities[-1] / n, seed=4, connected=True)
    dyn = FullyDynamicDFS(graph, engine="parallel")
    u0, v0 = next(iter(graph.edges()))

    def run():
        dyn.delete_edge(u0, v0)
        dyn.insert_edge(u0, v0)

    benchmark(run)
