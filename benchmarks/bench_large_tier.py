"""E11 — large tier: the array backend at n = 10^5.

Documented in ``docs/benchmarks.md`` (E11).

Claim: the flat/CSR array core behind ``backend="array"`` turns the three
hot paths — the ``StructureD`` rebuild, the batched canonical min-postorder
re-anchor (overlay service), and the LCA query path — from python dict/list
constant factors into vectorized numpy sweeps, at **>= 10x** over the dict
reference at n = 10^5 while returning byte-identical answers.  Results are
persisted to ``BENCH_E11.json`` (median-of-k timings, the counters asserted
on, the enforced speedup floors) and CI compares the file against the
committed trajectory with ``tools/bench_compare.py``.
"""

from __future__ import annotations

import os
import random

import pytest

np = pytest.importorskip("numpy")

from benchmarks.conftest import emit_bench, record_table, scale_sizes, timed_median
from repro.constants import VIRTUAL_ROOT
from repro.core.array_structure_d import ArrayStructureD
from repro.core.structure_d import StructureD
from repro.graph.array_graph import ArrayGraph
from repro.graph.generators import barabasi_albert_graph
from repro.graph.traversal import static_dfs_forest
from repro.metrics.counters import MetricsRecorder
from repro.tree.dfs_tree import DFSTree
from repro.tree.lca import ArrayLCAIndex, EulerTourLCA

SPEEDUP_MIN = 10.0
#: The XL tier floor is a sanity bound, not the headline claim: at n = 10^6
#: the array side pays its own memory traffic (hundreds of MB of int64
#: arrays), so the dict/array rebuild ratio narrows from ~20x (n = 10^5) to
#: single digits; the recorded speedup columns carry the actual numbers.
XL_SPEEDUP_MIN = 2.0


def _workload(n, seed=0):
    graph = barabasi_albert_graph(n, 3, seed=seed)
    agraph = ArrayGraph.from_graph(graph)
    tree = DFSTree(static_dfs_forest(graph), root=VIRTUAL_ROOT)
    return graph, agraph, tree


@pytest.mark.benchmark(group="E11-large-tier")
def test_array_backend_speedups_at_large_n(benchmark):
    n = scale_sizes([100_000], [20_000])[0]
    rng = random.Random(11)
    graph, agraph, tree = _workload(n)
    verts = [v for v in graph.vertices()]

    # --- rebuild path: StructureD construction ------------------------- #
    dict_metrics = MetricsRecorder()
    array_metrics = MetricsRecorder()
    t_rebuild_dict, d_dict = timed_median(
        lambda: StructureD(graph, tree, metrics=dict_metrics), k=3
    )
    t_rebuild_array, d_array = timed_median(
        lambda: ArrayStructureD(agraph, tree, metrics=array_metrics), k=3
    )
    assert d_dict.size() == d_array.size()
    assert dict_metrics["d_build_work"] == array_metrics["d_build_work"]
    rebuild_speedup = t_rebuild_dict / t_rebuild_array

    # --- overlay-service path: batched canonical re-anchor ------------- #
    q = max(n // 2, 1)
    us, los, his = [], [], []
    for _ in range(q):
        t_star = verts[rng.randrange(len(verts))]
        root = verts[rng.randrange(len(verts))]
        hi = tree.postorder(root)
        lo = hi - tree.subtree_size(root) + 1
        us.append(t_star)
        los.append(lo)
        his.append(hi)
    # Interval bounds travel as int64 arrays — the bulk form callers hold at
    # this scale; both backends receive the same inputs.
    los = np.asarray(los, dtype=np.int64)
    his = np.asarray(his, dtype=np.int64)
    # the dict base class answers the batch with the scalar bisect loop
    t_anchor_dict, (ans_dict, _) = timed_median(
        lambda: StructureD.min_post_alive_neighbor_batch(d_dict, us, los, his), k=3
    )
    t_anchor_array, (ans_array, _) = timed_median(
        lambda: d_array.min_post_alive_neighbor_batch(us, los, his), k=3
    )
    assert ans_dict == ans_array  # byte-identical canonical anchors
    anchor_speedup = t_anchor_dict / t_anchor_array

    # --- query path: LCA batches --------------------------------------- #
    scalar_lca = EulerTourLCA(tree)
    array_lca = ArrayLCAIndex(tree)
    # Query vertex ids in bulk int64 form too; both backends see the same
    # arrays (the dict index accepts np.int64 keys — same hashes).
    avs = np.asarray([verts[rng.randrange(len(verts))] for _ in range(q)], dtype=np.int64)
    bvs = np.asarray([verts[rng.randrange(len(verts))] for _ in range(q)], dtype=np.int64)
    t_lca_dict, lcas_dict = timed_median(
        lambda: [scalar_lca.lca(a, b) for a, b in zip(avs, bvs)], k=3
    )
    t_lca_array, lcas_array = timed_median(lambda: array_lca.lca_batch(avs, bvs), k=3)
    assert lcas_dict == lcas_array
    lca_speedup = t_lca_dict / t_lca_array

    for label, speedup in (
        ("rebuild", rebuild_speedup),
        ("overlay_service", anchor_speedup),
        ("query", lca_speedup),
    ):
        assert speedup >= SPEEDUP_MIN, (
            f"E11 {label} path: array backend only {speedup:.1f}x over dict "
            f"(floor {SPEEDUP_MIN}x) at n={n}"
        )

    record_table(
        benchmark,
        "E11_array_vs_dict",
        [n],
        {
            "rebuild_speedup": [round(rebuild_speedup, 1)],
            "overlay_service_speedup": [round(anchor_speedup, 1)],
            "query_speedup": [round(lca_speedup, 1)],
        },
    )
    emit_bench(
        "E11",
        timings_ms={
            "rebuild_dict": round(t_rebuild_dict, 3),
            "rebuild_array": round(t_rebuild_array, 3),
            "overlay_service_dict": round(t_anchor_dict, 3),
            "overlay_service_array": round(t_anchor_array, 3),
            "query_dict": round(t_lca_dict, 3),
            "query_array": round(t_lca_array, 3),
        },
        counters={
            "n": n,
            "num_edges": graph.num_edges,
            "queries": q,
            "d_build_work": dict_metrics["d_build_work"],
            "d_batch_queries": array_metrics["d_batch_queries"],
            "d_batch_query_fallbacks": array_metrics["d_batch_query_fallbacks"],
        },
        asserts={
            "rebuild_speedup_min": SPEEDUP_MIN,
            "overlay_service_speedup_min": SPEEDUP_MIN,
            "query_speedup_min": SPEEDUP_MIN,
        },
    )

    benchmark(lambda: ArrayStructureD(agraph, tree))


@pytest.mark.skipif(
    os.environ.get("REPRO_E11_XL") != "1",
    reason="XL tier is opt-in: set REPRO_E11_XL=1 (n = 10^6, minutes of runtime)",
)
@pytest.mark.benchmark(group="E11-large-tier")
def test_array_backend_xl_tier(benchmark):
    """Opt-in n = 10^6 tier.

    Same rebuild and overlay-service comparisons as E11 with ``k=1`` timings
    (the dict side alone is tens of seconds here), plus the array LCA index's
    batch path against a scalar python loop over the *same* index — the dict
    Euler sparse table is O(n log n) python list work and is not built at this
    scale.  Results land in ``BENCH_E11_XL.json`` so the committed
    ``BENCH_E11.json`` trajectory stays byte-stable under default runs.
    """
    n = 1_000_000
    rng = random.Random(11)
    graph, agraph, tree = _workload(n)
    verts = [v for v in graph.vertices()]

    dict_metrics = MetricsRecorder()
    array_metrics = MetricsRecorder()
    t_rebuild_dict, d_dict = timed_median(
        lambda: StructureD(graph, tree, metrics=dict_metrics), k=1,
    )
    t_rebuild_array, d_array = timed_median(
        lambda: ArrayStructureD(agraph, tree, metrics=array_metrics), k=1,
    )
    assert d_dict.size() == d_array.size()
    assert dict_metrics["d_build_work"] == array_metrics["d_build_work"]
    rebuild_speedup = t_rebuild_dict / t_rebuild_array
    assert rebuild_speedup >= XL_SPEEDUP_MIN

    q = 200_000  # capped: the dict scalar loops dominate the runtime
    us, los, his = [], [], []
    for _ in range(q):
        t_star = verts[rng.randrange(len(verts))]
        root = verts[rng.randrange(len(verts))]
        hi = tree.postorder(root)
        lo = hi - tree.subtree_size(root) + 1
        us.append(t_star)
        los.append(lo)
        his.append(hi)
    los = np.asarray(los, dtype=np.int64)
    his = np.asarray(his, dtype=np.int64)
    t_anchor_dict, (ans_dict, _) = timed_median(
        lambda: StructureD.min_post_alive_neighbor_batch(d_dict, us, los, his),
        k=1,
    )
    t_anchor_array, (ans_array, _) = timed_median(
        lambda: d_array.min_post_alive_neighbor_batch(us, los, his), k=1,
    )
    assert ans_dict == ans_array
    anchor_speedup = t_anchor_dict / t_anchor_array
    assert anchor_speedup >= XL_SPEEDUP_MIN

    array_lca = ArrayLCAIndex(tree)
    avs = np.asarray([verts[rng.randrange(len(verts))] for _ in range(q)], dtype=np.int64)
    bvs = np.asarray([verts[rng.randrange(len(verts))] for _ in range(q)], dtype=np.int64)
    t_lca_scalar, lcas_scalar = timed_median(
        lambda: [array_lca.lca(a, b) for a, b in zip(avs, bvs)], k=1,
    )
    t_lca_batch, lcas_batch = timed_median(
        lambda: array_lca.lca_batch(avs, bvs), k=1,
    )
    assert lcas_scalar == lcas_batch
    lca_batch_speedup = t_lca_scalar / t_lca_batch

    # Routed straight through emit_bench: record_table() would file the table
    # under experiment "E11" and dirty the committed trajectory.
    emit_bench(
        "E11_XL",
        timings_ms={
            "rebuild_dict": round(t_rebuild_dict, 3),
            "rebuild_array": round(t_rebuild_array, 3),
            "overlay_service_dict": round(t_anchor_dict, 3),
            "overlay_service_array": round(t_anchor_array, 3),
            "query_scalar_loop": round(t_lca_scalar, 3),
            "query_batch": round(t_lca_batch, 3),
        },
        counters={
            "n": n,
            "num_edges": graph.num_edges,
            "queries": q,
            "d_build_work": dict_metrics["d_build_work"],
        },
        tables={
            "E11_XL_array_vs_dict": {
                "sizes": [n],
                "rebuild_speedup": [round(rebuild_speedup, 1)],
                "overlay_service_speedup": [round(anchor_speedup, 1)],
                "lca_batch_vs_scalar_speedup": [round(lca_batch_speedup, 1)],
            }
        },
        asserts={
            "rebuild_speedup_min": XL_SPEEDUP_MIN,
            "overlay_service_speedup_min": XL_SPEEDUP_MIN,
        },
    )
    benchmark(lambda: array_lca.lca_batch(avs, bvs))
