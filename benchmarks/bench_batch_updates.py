"""E7 — amortized batch updates: per-update rebuild vs Theorem 9 overlays.

Documented in ``docs/benchmarks.md`` (E7).

Claims reproduced: rebuilding ``D`` after every update costs ``O(m)`` work per
update (Theorem 8), but the multi-update extension (Theorem 9) answers queries
correctly for up to ``k`` overlaid updates, so a rebuild policy of
``rebuild_every=k`` drops the amortized rebuild work to ``O(m / k)`` per update
— and, because query answers are canonical, *without changing a single parent
pointer* of the maintained trees.

The benchmark runs the ``sustained_churn`` scenario under three policies
(rebuild every update, every ``k``-th update, auto-tuned) and checks:

* the amortized policy performs at least ``5x`` fewer ``build_d`` rebuilds
  than the per-update policy on a 100-update churn workload;
* the final parent maps of all policies are identical on every tested seed.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table, scale_sizes
from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.metrics.counters import MetricsRecorder
from repro.workloads.scenarios import build_scenario

UPDATES = 100
K = 10


def _run_policy(scenario, rebuild_every):
    metrics = MetricsRecorder()
    dyn = FullyDynamicDFS(scenario.graph, rebuild_every=rebuild_every, metrics=metrics)
    before = metrics.as_dict()
    dyn.apply_all(scenario.updates[:UPDATES])
    delta = metrics.snapshot_delta(before)
    assert dyn.is_valid()
    return dyn.parent_map(), delta


@pytest.mark.benchmark(group="E7-batch-updates")
def test_amortized_policy_rebuild_work(benchmark):
    """Rebuild count and work drop ~k-fold; the trees stay byte-identical."""
    sizes = scale_sizes([256, 512, 1024, 2048], [128, 256])
    seeds = [0, 1, 2]
    rebuilds_per_update, rebuilds_amortized = [], []
    work_per_update, work_amortized, work_auto = [], [], []
    overlay_peak = []
    for n in sizes:
        r1 = rk = w1 = wk = wa = peak = 0.0
        for seed in seeds:
            scenario = build_scenario("sustained_churn", n=n, seed=seed, updates=UPDATES)
            tree1, d1 = _run_policy(scenario, 1)
            treek, dk = _run_policy(scenario, K)
            treea, da = _run_policy(scenario, None)
            assert tree1 == treek == treea, (
                f"amortized trees diverged from per-update rebuild (n={n}, seed={seed})"
            )
            assert d1["d_builds"] >= 5 * dk["d_builds"], (
                f"expected >=5x fewer rebuilds (n={n}, seed={seed}): "
                f"{d1['d_builds']} vs {dk['d_builds']}"
            )
            r1 += d1["d_builds"]
            rk += dk["d_builds"]
            w1 += d1["d_build_work"]
            wk += dk["d_build_work"]
            wa += da["d_build_work"]
            peak = max(peak, dk.get("max_overlay_size", 0))
        count = len(seeds)
        rebuilds_per_update.append(round(r1 / count, 1))
        rebuilds_amortized.append(round(rk / count, 1))
        work_per_update.append(round(w1 / count / UPDATES, 1))
        work_amortized.append(round(wk / count / UPDATES, 1))
        work_auto.append(round(wa / count / UPDATES, 1))
        overlay_peak.append(peak)

    record_table(
        benchmark,
        "E7_rebuild_work_per_update",
        sizes,
        {
            "d_builds_per_update_policy": rebuilds_per_update,
            f"d_builds_rebuild_every_{K}": rebuilds_amortized,
            "build_work_per_update_policy": work_per_update,
            f"build_work_rebuild_every_{K}": work_amortized,
            "build_work_auto_policy": work_auto,
            "max_overlay_size": overlay_peak,
        },
    )

    scenario = build_scenario("sustained_churn", n=sizes[-1], seed=0, updates=UPDATES)

    def run():
        dyn = FullyDynamicDFS(scenario.graph, rebuild_every=K)
        dyn.apply_all(scenario.updates[:UPDATES])
        return dyn

    benchmark(run)


@pytest.mark.benchmark(group="E7-batch-updates")
def test_absorb_maintenance_removes_rebuild_spike(benchmark):
    """Incremental D maintenance: ``d_maintenance="absorb"`` folds overlays
    into the sorted lists in O(overlay log deg) instead of rebuilding in O(m),
    so the amortized driver performs zero full ``d_builds`` after
    initialization on edge churn — with byte-identical trees."""
    sizes = scale_sizes([512, 1024], [128, 256])
    rebuild_work, absorb_work, absorbs = [], [], []
    for n in sizes:
        scenario = build_scenario("sustained_churn", n=n, seed=1, updates=UPDATES)
        updates = scenario.updates[:UPDATES]
        results = {}
        for mode in ("rebuild", "absorb"):
            metrics = MetricsRecorder()
            dyn = FullyDynamicDFS(scenario.graph, rebuild_every=K, d_maintenance=mode, metrics=metrics)
            before = metrics.as_dict()
            dyn.apply_all(updates)
            results[mode] = (dyn.parent_map(), metrics.snapshot_delta(before))
        assert results["rebuild"][0] == results["absorb"][0], f"absorb diverged (n={n})"
        delta = results["absorb"][1]
        assert delta["d_builds"] == 0, "absorb mode must not rebuild after initialization"
        assert delta["d_absorb_work"] < results["rebuild"][1]["d_build_work"]
        rebuild_work.append(round(results["rebuild"][1]["d_build_work"] / UPDATES, 1))
        absorb_work.append(round(delta["d_absorb_work"] / UPDATES, 1))
        absorbs.append(delta["d_absorbs"])
    record_table(
        benchmark,
        "E7_absorb_vs_rebuild",
        sizes,
        {
            "rebuild_work_per_update": rebuild_work,
            "absorb_work_per_update": absorb_work,
            "d_absorbs": absorbs,
        },
    )
    scenario = build_scenario("sustained_churn", n=sizes[-1], seed=1, updates=UPDATES)
    benchmark(
        lambda: FullyDynamicDFS(
            scenario.graph, rebuild_every=K, d_maintenance="absorb"
        ).apply_all(scenario.updates[:20])
    )


@pytest.mark.benchmark(group="E7-batch-updates")
def test_batch_api_single_pass(benchmark):
    """apply_all() serves a whole batch with the policy's rebuild cadence and
    records batch-level metrics."""
    n = scale_sizes([1024], [256])[0]
    scenario = build_scenario("sustained_churn", n=n, seed=3, updates=UPDATES)
    metrics = MetricsRecorder()
    dyn = FullyDynamicDFS(scenario.graph, rebuild_every=K, metrics=metrics)
    before = metrics.as_dict()
    dyn.apply_all(scenario.updates[:UPDATES])
    delta = metrics.snapshot_delta(before)
    assert delta["update_batches"] == 1
    assert delta["updates"] == UPDATES
    assert delta["overlay_served_updates"] == UPDATES - UPDATES // K
    record_table(
        benchmark,
        "E7_batch_metrics",
        [n],
        {
            "updates": [delta["updates"]],
            "overlay_served_updates": [delta["overlay_served_updates"]],
            "d_builds": [delta["d_builds"]],
        },
    )
    benchmark(lambda: FullyDynamicDFS(scenario.graph, rebuild_every=K).apply_all(scenario.updates[:20]))
