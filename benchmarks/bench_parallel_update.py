"""E1 — Theorems 1/12/13: per-update cost of the parallel algorithm.

Documented in ``docs/benchmarks.md`` (E1).

Reproduces the paper's headline claim: after any single update the DFS tree is
repaired with a poly-logarithmic number of parallel query rounds (the paper's
``O(log^2 n)`` sets of independent queries and ``O(log^3 n)`` EREW time), while
the sequential rerooting baseline needs a dependency chain that grows linearly
on adversarial inputs.  Absolute wall-clock numbers are incidental (CPython,
one core); the *shape* — polylog vs linear growth — is the reproduced result.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table, scale_sizes
from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.graph.generators import comb_with_tip_back_edges, gnp_random_graph
from repro.metrics.counters import MetricsRecorder
from repro.workloads.updates import edge_churn


def _one_churn_round(graph, engine):
    metrics = MetricsRecorder()
    dyn = FullyDynamicDFS(graph, engine=engine, metrics=metrics)
    updates = edge_churn(graph, 10, seed=42)
    dyn.apply_all(updates)
    return metrics


@pytest.mark.benchmark(group="E1-parallel-update")
def test_parallel_update_random_graphs(benchmark):
    """Per-update query rounds on random graphs stay polylogarithmic in n."""
    sizes = scale_sizes([256, 512, 1024, 2048], [128, 256])
    rounds, queries, seq_rounds = [], [], []
    for n in sizes:
        graph = gnp_random_graph(n, 4.0 / n, seed=1, connected=True)
        par = _one_churn_round(graph, "parallel")
        seq = _one_churn_round(graph, "sequential")
        rounds.append(par["query_rounds"] / max(par["updates"], 1))
        queries.append(par["queries"] / max(par["updates"], 1))
        seq_rounds.append(seq["query_rounds"] / max(seq["updates"], 1))
        assert par.get("fallback_components", 0) == 0

    record_table(
        benchmark,
        "E1_random_graphs_per_update",
        sizes,
        {
            "parallel_query_rounds": rounds,
            "parallel_queries": queries,
            "sequential_query_rounds": seq_rounds,
        },
    )

    graph = gnp_random_graph(sizes[-1], 4.0 / sizes[-1], seed=1, connected=True)
    dyn = FullyDynamicDFS(graph, engine="parallel")
    u0, v0 = next(iter(graph.edges()))

    def run():
        # An idempotent delete/insert pair so the benchmark can repeat it.
        dyn.delete_edge(u0, v0)
        dyn.insert_edge(u0, v0)

    benchmark(run)


@pytest.mark.benchmark(group="E1-parallel-update")
def test_parallel_vs_sequential_on_adversarial_comb(benchmark):
    """On combs, rerooting the tree at the tip of the first tooth (the core
    primitive every update reduces to, Theorem 3) forces the sequential
    baseline through a Θ(teeth)-long dependency chain, while the parallel
    engine's round count stays poly-logarithmic — the separation motivating the
    paper."""
    from repro.constants import VIRTUAL_ROOT
    from repro.core.queries import BruteForceQueryService
    from repro.core.reduction import RerootTask
    from repro.core.reroot_parallel import ParallelRerootEngine
    from repro.core.reroot_sequential import SequentialRerootEngine
    from repro.graph.traversal import static_dfs_forest
    from repro.tree.dfs_tree import DFSTree

    teeth_sizes = scale_sizes([16, 32, 64, 128], [8, 16])
    tooth = 6
    par_rounds, seq_depth = [], []
    for teeth in teeth_sizes:
        # Tip back edges that *survive* canonical re-anchoring: each tip
        # reaches only the spine vertex before its own tooth, so whichever
        # source endpoint the canonical answer picks, the sequential baseline
        # still peels one tooth per dependent reroot (Θ(teeth) chain).
        graph = comb_with_tip_back_edges(teeth, tooth)
        tree = DFSTree(static_dfs_forest(graph), root=VIRTUAL_ROOT)
        task = RerootTask(subtree_root=0, new_root=teeth + tooth - 1, attach=VIRTUAL_ROOT)
        service = BruteForceQueryService(graph, tree)

        par = MetricsRecorder()
        ParallelRerootEngine(
            tree, service, adjacency=graph.neighbor_list, metrics=par
        ).reroot_many([task])
        seq = MetricsRecorder()
        SequentialRerootEngine(tree, service, metrics=seq).reroot_many([task])
        par_rounds.append(par["query_rounds"])
        seq_depth.append(seq["sequential_chain_depth"])
    record_table(
        benchmark,
        "E1_adversarial_comb",
        teeth_sizes,
        {"parallel_query_rounds": par_rounds, "sequential_chain_rounds": seq_depth},
    )
    # The separation the paper proves: the ratio grows with the input size.
    assert seq_depth[-1] / max(par_rounds[-1], 1) > seq_depth[0] / max(par_rounds[0], 1)

    graph = comb_with_tip_back_edges(teeth_sizes[-1], tooth)
    tree = DFSTree(static_dfs_forest(graph), root=VIRTUAL_ROOT)
    task = RerootTask(subtree_root=0, new_root=teeth_sizes[-1] + tooth - 1, attach=VIRTUAL_ROOT)
    service = BruteForceQueryService(graph, tree)

    def run():
        engine = ParallelRerootEngine(tree, service, adjacency=graph.neighbor_list)
        engine.reroot_many([task])

    benchmark(run)
