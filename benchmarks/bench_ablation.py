"""E8 — ablation of the traversal mix (Section 4 design choices).

Documented in ``docs/benchmarks.md`` (E8).

The phase/stage machinery is what keeps the number of rounds poly-logarithmic:

* disabling *path halving* (walking to the nearer endpoint instead) makes the
  leftover path shrink by O(1) per round, so rounds blow up on long paths;
* disabling the *heavy-subtree scenarios* (treating the heavy case like a
  disintegrating traversal) can break the C1/C2 invariant; the engine repairs
  it with the counted fallback, trading parallelism for correctness.

The harness quantifies both effects; the full engine must show zero fallbacks
and the smallest round counts.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table, scale_sizes
from repro.constants import VIRTUAL_ROOT
from repro.core.queries import BruteForceQueryService
from repro.core.reduction import RerootTask
from repro.core.reroot_parallel import ParallelRerootEngine
from repro.graph.generators import caterpillar_graph, gnp_random_graph
from repro.graph.traversal import static_dfs_forest
from repro.graph.validation import check_dfs_tree
from repro.metrics.counters import MetricsRecorder
from repro.tree.dfs_tree import DFSTree


def _run(graph, task, **kwargs):
    tree = DFSTree(static_dfs_forest(graph), root=VIRTUAL_ROOT)
    metrics = MetricsRecorder()
    engine = ParallelRerootEngine(
        tree,
        BruteForceQueryService(graph, tree),
        adjacency=graph.neighbor_list,
        metrics=metrics,
        **kwargs,
    )
    assignment = engine.reroot_many([task])
    parent = tree.parent_map()
    parent.update(assignment)
    assert check_dfs_tree(graph, parent) == []
    return metrics


@pytest.mark.benchmark(group="E8-ablation")
def test_path_halving_ablation(benchmark):
    spines = scale_sizes([64, 128, 256], [32, 64])
    full_rounds, crippled_rounds = [], []
    for spine in spines:
        graph = caterpillar_graph(spine, 2)
        task = RerootTask(subtree_root=0, new_root=spine - 1, attach=VIRTUAL_ROOT)
        full_rounds.append(_run(graph, task)["traversal_rounds"])
        crippled_rounds.append(
            _run(graph, task, enable_path_halving=False)["traversal_rounds"]
        )
    record_table(
        benchmark,
        "E8_path_halving_ablation",
        spines,
        {"full_engine_rounds": full_rounds, "no_path_halving_rounds": crippled_rounds},
    )
    assert crippled_rounds[-1] > full_rounds[-1]

    graph = caterpillar_graph(spines[-1], 2)
    task = RerootTask(subtree_root=0, new_root=spines[-1] - 1, attach=VIRTUAL_ROOT)
    benchmark(lambda: _run(graph, task))


@pytest.mark.benchmark(group="E8-ablation")
def test_heavy_scenarios_ablation(benchmark):
    sizes = scale_sizes([200, 400], [100])
    full_fallbacks, ablated_fallbacks = [], []
    full_rounds, ablated_rounds = [], []
    for n in sizes:
        graph = gnp_random_graph(n, 5.0 / n, seed=7, connected=True)
        tree = DFSTree(static_dfs_forest(graph), root=VIRTUAL_ROOT)
        root = tree.children(VIRTUAL_ROOT)[0]
        deep = max(tree.vertices(), key=lambda v: tree.level(v))
        task = RerootTask(subtree_root=root, new_root=deep, attach=VIRTUAL_ROOT)
        full = _run(graph, task)
        ablated = _run(graph, task, enable_heavy=False)
        full_fallbacks.append(full.get("fallback_components", 0))
        ablated_fallbacks.append(ablated.get("fallback_components", 0))
        full_rounds.append(full["traversal_rounds"])
        ablated_rounds.append(ablated["traversal_rounds"])
        assert full.get("fallback_components", 0) == 0
    record_table(
        benchmark,
        "E8_heavy_scenarios_ablation",
        sizes,
        {
            "full_engine_rounds": full_rounds,
            "heavy_disabled_rounds": ablated_rounds,
            "full_engine_fallbacks": full_fallbacks,
            "heavy_disabled_fallbacks": ablated_fallbacks,
        },
    )

    graph = gnp_random_graph(sizes[-1], 5.0 / sizes[-1], seed=7, connected=True)
    tree = DFSTree(static_dfs_forest(graph), root=VIRTUAL_ROOT)
    root = tree.children(VIRTUAL_ROOT)[0]
    deep = max(tree.vertices(), key=lambda v: tree.level(v))
    task = RerootTask(subtree_root=root, new_root=deep, attach=VIRTUAL_ROOT)
    benchmark(lambda: _run(graph, task))
