"""E4 — Theorem 16: distributed dynamic DFS in CONGEST(n/D).

Documented in ``docs/benchmarks.md`` (E4).

Claim: per update, ``O(D log^2 n)`` rounds and ``O(nD log^2 n + m)`` messages of
size ``O(n/D)``.  The harness sweeps graphs of (roughly) fixed size but very
different diameters and reports rounds, messages and the maximum message size
per update; rounds must grow with the diameter ``D``, not with ``n``, and no
message may exceed the ``ceil(n/D)`` budget.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table, scale_sizes
from repro.distributed.distributed_dfs import DistributedDynamicDFS
from repro.graph.generators import cycle_with_chords, grid_graph, path_graph, star_graph
from repro.workloads.updates import edge_churn


@pytest.mark.benchmark(group="E4-distributed")
def test_distributed_rounds_vs_diameter(benchmark):
    n = scale_sizes([256], [64])[0]
    side = int(n ** 0.5)
    topologies = [
        ("star (D=2)", star_graph(n)),
        ("random chords (small D)", cycle_with_chords(n, n // 2, seed=1)),
        ("grid (D=2*sqrt(n))", grid_graph(side, side)),
        ("path (D=n-1)", path_graph(n)),
    ]
    diameters, rounds, messages, msg_size, budget = [], [], [], [], []
    labels = []
    for label, graph in topologies:
        dist = DistributedDynamicDFS(graph)
        updates = edge_churn(graph, 4, seed=9)
        dist.apply_all(updates)
        labels.append(label)
        diameters.append(dist.diameter)
        rounds.append(dist.metrics["max_rounds_per_update"])
        messages.append(dist.metrics["max_messages_per_update"])
        msg_size.append(dist.network.max_message_words)
        budget.append(dist.bandwidth)
        assert dist.network.max_message_words <= dist.bandwidth

    record_table(
        benchmark,
        "E4_rounds_vs_diameter",
        diameters,
        {
            "rounds_per_update": rounds,
            "messages_per_update": messages,
            "max_message_words": msg_size,
            "message_budget_nD": budget,
        },
    )
    print("topologies:", ", ".join(f"{l} -> D={d}" for l, d in zip(labels, diameters)))
    # Rounds grow with the diameter: the path needs more rounds than the star.
    assert rounds[-1] > rounds[0]

    graph = grid_graph(side, side)
    dist = DistributedDynamicDFS(graph)
    u0, v0 = next(iter(graph.edges()))

    def run():
        dist.delete_edge(u0, v0)
        dist.insert_edge(u0, v0)

    benchmark(run)


@pytest.mark.benchmark(group="E4-distributed")
def test_distributed_classic_vs_amortized_policy(benchmark):
    """UpdateEngine amortization in CONGEST: the classic policy rebuilds the
    BFS/broadcast tree (O(D) rounds) and re-disseminates the forest summary on
    every update; ``rebuild_every=k`` reuses the cached broadcast state until
    the policy (or a deleted broadcast-tree edge) forces a rebuild — with
    byte-identical trees and measurably fewer rounds per update."""
    from repro.metrics.counters import MetricsRecorder
    from repro.workloads.scenarios import build_scenario

    K = 10
    updates_count = 100
    sizes = scale_sizes([96, 192], [48, 96])
    classic_rounds, amortized_rounds = [], []
    classic_rebuilds, amortized_rebuilds = [], []
    for n in sizes:
        scenario = build_scenario("sustained_churn", n=n, seed=1, updates=updates_count)
        updates = scenario.updates[:updates_count]
        results = {}
        for k in (1, K):
            metrics = MetricsRecorder()
            dist = DistributedDynamicDFS(scenario.graph, rebuild_every=k, metrics=metrics)
            dist.apply_all(updates)
            results[k] = (dist.parent_map(), metrics["service_rebuilds"], dist.rounds())
        assert results[1][0] == results[K][0], f"policies diverged (n={n})"
        assert results[1][1] >= 3 * results[K][1], "expected >=3x fewer service rebuilds"
        assert results[K][2] < results[1][2], "expected fewer CONGEST rounds"
        classic_rebuilds.append(results[1][1])
        amortized_rebuilds.append(results[K][1])
        classic_rounds.append(round(results[1][2] / updates_count, 1))
        amortized_rounds.append(round(results[K][2] / updates_count, 1))

    record_table(
        benchmark,
        "E4_classic_vs_amortized",
        sizes,
        {
            "classic_service_rebuilds": classic_rebuilds,
            f"rebuild_every_{K}_service_rebuilds": amortized_rebuilds,
            "classic_rounds_per_update": classic_rounds,
            f"rebuild_every_{K}_rounds_per_update": amortized_rounds,
        },
    )

    scenario = build_scenario("sustained_churn", n=sizes[0], seed=1, updates=updates_count)

    def run():
        dist = DistributedDynamicDFS(scenario.graph, rebuild_every=K)
        dist.apply_all(scenario.updates[:20])

    benchmark(run)


@pytest.mark.benchmark(group="E4-distributed")
def test_distributed_local_repair_vs_rebuild_on_invalidation(benchmark):
    """Broadcast-tree local repair: a dead tree edge reattaches the orphaned
    subtree in O(depth-of-subtree) rounds instead of invalidating the cache
    and paying a full O(D)-round BFS rebuild.  At the same rebuild cadence the
    repairing backend must use fewer total rounds, repairs must dominate
    fallbacks, and the maintained trees stay byte-identical."""
    from repro.metrics.counters import MetricsRecorder
    from repro.workloads.scenarios import build_scenario

    K = 10
    updates_count = 100
    cases = [
        ("sustained_churn", scale_sizes([200], [64])[0], 1),
        ("datacenter_link_flaps", scale_sizes([144], [64])[0], 3),
    ]
    labels, repair_rounds_total, rebuild_rounds_total = [], [], []
    repairs, fallbacks, forced_rebuilds_saved = [], [], []
    for name, n, seed in cases:
        scenario = build_scenario(name, n=n, seed=seed, updates=updates_count)
        updates = scenario.updates[:updates_count]
        results = {}
        for repair in (False, True):
            metrics = MetricsRecorder("dist", strict=True)
            dist = DistributedDynamicDFS(
                scenario.graph, rebuild_every=K, local_repair=repair, metrics=metrics
            )
            dist.apply_all(updates)
            results[repair] = (dist.parent_map(), dist.rounds(), metrics)
        assert results[False][0] == results[True][0], f"repair diverged ({name})"
        _, rounds_rebuild, _ = results[False]
        _, rounds_repair, m = results[True]
        assert rounds_repair < rounds_rebuild, (name, rounds_repair, rounds_rebuild)
        assert m["bfs_repairs"] >= 1
        assert m["bfs_repairs"] > m["bfs_repair_fallbacks"], "repairs must dominate fallbacks"
        # Repairs replace forced rebuilds: the repairing run rebuilds less.
        assert m["service_rebuilds"] < results[False][2]["service_rebuilds"]
        labels.append(f"{name}:n={n}")
        repair_rounds_total.append(rounds_repair)
        rebuild_rounds_total.append(rounds_rebuild)
        repairs.append(m["bfs_repairs"])
        fallbacks.append(m["bfs_repair_fallbacks"])
        forced_rebuilds_saved.append(
            results[False][2]["service_rebuilds"] - m["service_rebuilds"]
        )

    record_table(
        benchmark,
        "E4_local_repair_vs_rebuild",
        list(range(len(labels))),
        {
            "total_rounds_with_repair": repair_rounds_total,
            "total_rounds_rebuild_on_invalidation": rebuild_rounds_total,
            "bfs_repairs": repairs,
            "bfs_repair_fallbacks": fallbacks,
            "forced_rebuilds_avoided": forced_rebuilds_saved,
        },
    )
    print("cases:", ", ".join(labels))

    scenario = build_scenario("sustained_churn", n=cases[0][1], seed=1, updates=updates_count)

    def run():
        dist = DistributedDynamicDFS(scenario.graph, rebuild_every=K, local_repair=True)
        dist.apply_all(scenario.updates[:20])

    benchmark(run)
