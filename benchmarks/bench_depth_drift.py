"""E9 — depth-aware voluntary rebuilds close the ``rebuild_every=None`` gap.

Documented in ``docs/benchmarks.md`` (E9).

The PR 3 regression this experiment guards: on low-diameter graphs under the
auto-tuned policy, pure local repair *loses* to rebuild-on-invalidation —
the forced rebuilds it avoids were accidentally re-minimising the broadcast
depth (initiators sit near update sites), so pure-repair trees ride a deeper
tree forever and every pipelined wave pays the extra depth.

The fix is the ``depth_drift`` cost model: the backend accumulates *observed
waves × (current depth − fresh-rebuild depth)* — the excess rounds the stale
tree actually charged — and forces a **voluntary rebuild** from the best
known initiator once the account exceeds the modeled ``O(D)`` rebuild cost.

The harness drives a low-diameter ``sustained_churn`` workload with
``rebuild_every=None`` through three configurations,

* ``rebuild_on_invalidation`` — ``local_repair=False`` (every broadcast-tree
  death pays a full rebuild),
* ``pure_repair`` — ``local_repair=True, drift_rebuild_cost=inf`` (the
  regression configuration: repairs never trigger a rebuild),
* ``voluntary`` — ``local_repair=True`` with the default cost model,

and asserts that the voluntary-rebuild configuration uses strictly fewer
total CONGEST rounds than *both* baselines, fires at least one voluntary
rebuild, keeps repairs dominant over fallbacks, and maintains parent maps
byte-identical across all three configurations after every update (query
answers are canonical — the cost model changes the rounds, never the tree).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table, scale_sizes
from repro.distributed.distributed_dfs import DistributedDynamicDFS
from repro.metrics.counters import MetricsRecorder
from repro.workloads.scenarios import build_scenario

UPDATES = 100

CONFIGS = [
    ("rebuild_on_invalidation", dict(local_repair=False)),
    ("pure_repair", dict(local_repair=True, drift_rebuild_cost=float("inf"))),
    ("voluntary", dict(local_repair=True)),
]


@pytest.mark.benchmark(group="E9-depth-drift")
def test_voluntary_rebuild_beats_both_baselines(benchmark):
    cases = [
        (scale_sizes([96], [48])[0], scale_sizes([2], [5])[0]),
        (scale_sizes([144], [32])[0], scale_sizes([2], [7])[0]),
    ]
    labels, rounds_by_config = [], {name: [] for name, _ in CONFIGS}
    voluntary_counts, repair_counts, fallback_counts = [], [], []
    for n, seed in cases:
        scenario = build_scenario("sustained_churn", n=n, seed=seed, updates=UPDATES)
        updates = scenario.updates[:UPDATES]
        drivers = {}
        for name, kwargs in CONFIGS:
            metrics = MetricsRecorder(name, strict=True)
            drivers[name] = (
                DistributedDynamicDFS(
                    scenario.graph, rebuild_every=None, metrics=metrics, **kwargs
                ),
                metrics,
            )
        # Stepwise so divergence (which canonical answers forbid) is caught at
        # the offending update, not at the end of the run.
        for step, update in enumerate(updates):
            reference = None
            for name, (driver, _) in drivers.items():
                driver.apply(update)
                if reference is None:
                    reference = driver.parent_map()
                else:
                    assert driver.parent_map() == reference, (
                        f"{name} diverged at update {step} (n={n})"
                    )
        totals = {name: driver.rounds() for name, (driver, _) in drivers.items()}
        _, vol_metrics = drivers["voluntary"]
        assert totals["voluntary"] < totals["rebuild_on_invalidation"], (n, totals)
        assert totals["voluntary"] < totals["pure_repair"], (n, totals)
        assert vol_metrics["voluntary_rebuilds"] >= 1, f"cost model never fired (n={n})"
        assert vol_metrics["bfs_repairs"] > vol_metrics["bfs_repair_fallbacks"]
        labels.append(f"n={n},seed={seed},D={drivers['voluntary'][0].diameter}")
        for name, _ in CONFIGS:
            rounds_by_config[name].append(totals[name])
        voluntary_counts.append(vol_metrics["voluntary_rebuilds"])
        repair_counts.append(vol_metrics["bfs_repairs"])
        fallback_counts.append(vol_metrics["bfs_repair_fallbacks"])

    record_table(
        benchmark,
        "E9_depth_drift_total_rounds",
        list(range(len(labels))),
        {
            **{f"rounds_{name}": vals for name, vals in rounds_by_config.items()},
            "voluntary_rebuilds": voluntary_counts,
            "bfs_repairs": repair_counts,
            "bfs_repair_fallbacks": fallback_counts,
        },
    )
    print("cases:", ", ".join(labels))

    scenario = build_scenario("sustained_churn", n=cases[0][0], seed=cases[0][1], updates=UPDATES)

    def run():
        dist = DistributedDynamicDFS(scenario.graph, rebuild_every=None, local_repair=True)
        dist.apply_all(scenario.updates[:20])

    benchmark(run)
