"""Shared helpers for the benchmark harnesses (see EXPERIMENTS.md).

Each benchmark module regenerates one experiment from the index in DESIGN.md §5:
it measures wall-clock time with pytest-benchmark *and* prints the model-level
scaling table (query rounds, passes, CONGEST rounds, ...) that corresponds to
the theorem being reproduced.  The tables are also attached to the benchmark
records via ``benchmark.extra_info`` so ``--benchmark-json`` keeps them.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

import pytest

# Allow quick smoke runs of the benchmark suite: REPRO_BENCH_SCALE=small
SCALE = os.environ.get("REPRO_BENCH_SCALE", "normal")


def scale_sizes(normal: Sequence[int], small: Sequence[int]) -> List[int]:
    """Pick the size sweep according to REPRO_BENCH_SCALE."""
    return list(small if SCALE == "small" else normal)


def record_table(benchmark, label: str, sizes: Sequence[float], metrics: Dict[str, Sequence[float]]) -> None:
    """Print a scaling table and attach it to the benchmark record."""
    from repro.metrics.complexity import summarize_scaling

    text = summarize_scaling(label, list(sizes), {k: list(v) for k, v in metrics.items()})
    print("\n" + text)
    benchmark.extra_info[label] = {
        "sizes": list(sizes),
        **{k: list(v) for k, v in metrics.items()},
    }


@pytest.fixture
def scale() -> str:
    return SCALE
