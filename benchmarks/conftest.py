"""Shared helpers for the benchmark harnesses (see EXPERIMENTS.md).

Each benchmark module regenerates one experiment from the index in DESIGN.md §5:
it measures wall-clock time with pytest-benchmark *and* prints the model-level
scaling table (query rounds, passes, CONGEST rounds, ...) that corresponds to
the theorem being reproduced.  The tables are also attached to the benchmark
records via ``benchmark.extra_info`` so ``--benchmark-json`` keeps them.

Machine-readable trajectories
-----------------------------
Every experiment additionally emits ``BENCH_<experiment>.json`` at the repo
root (``REPRO_BENCH_JSON_DIR`` overrides the directory, ``REPRO_BENCH_JSON=0``
disables emission).  ``record_table`` routes its scaling tables there
automatically; benchmarks with wall-clock claims add median-of-k timings,
counters and asserted speedup floors via :func:`emit_bench` /
:func:`timed_median`.  ``tools/bench_compare.py`` diffs two such files —
counters exactly, timings within a tolerance band — which is how CI checks
the committed trajectory (see docs/benchmarks.md for the schema).

The accumulator itself lives in :mod:`benchmarks._trajectory` so that the
pytest-loaded conftest instance and ``import benchmarks.conftest`` share one
dict.
"""

from __future__ import annotations

import pathlib
import sys
from typing import Dict, List, Sequence

import pytest

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(_REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT))

from benchmarks._trajectory import (  # noqa: E402  (path bootstrap above)
    REPO_ROOT,
    SCALE,
    emit_bench,
    timed_median,
    write_bench_files,
)

__all__ = [
    "REPO_ROOT",
    "SCALE",
    "emit_bench",
    "record_table",
    "scale_sizes",
    "timed_median",
]


def scale_sizes(normal: Sequence[int], small: Sequence[int]) -> List[int]:
    """Pick the size sweep according to REPRO_BENCH_SCALE."""
    return list(small if SCALE == "small" else normal)


def pytest_sessionfinish(session, exitstatus):  # noqa: ARG001 - pytest hook
    write_bench_files()


def record_table(benchmark, label: str, sizes: Sequence[float], metrics: Dict[str, Sequence[float]]) -> None:
    """Print a scaling table, attach it to the benchmark record, and route it
    into the experiment's ``BENCH_<experiment>.json`` trajectory."""
    from repro.metrics.complexity import summarize_scaling

    text = summarize_scaling(label, list(sizes), {k: list(v) for k, v in metrics.items()})
    print("\n" + text)
    table = {
        "sizes": list(sizes),
        **{k: list(v) for k, v in metrics.items()},
    }
    benchmark.extra_info[label] = table
    emit_bench(label.split("_", 1)[0], tables={label: table})


@pytest.fixture
def scale() -> str:
    return SCALE
