"""E10 — per-component round accounting + 2-sweep center voluntary rebuilds.

Documented in ``docs/benchmarks.md`` (E10).

Two claims, one per harness:

1. **Repair-vs-rebuild ordering survives fragmentation.**  Under the legacy
   accounting, a rebuild on a fragmented graph flooded only the initiator's
   component and let every other fragment ride the wave for free, so round
   comparisons between maintenance policies stopped meaning anything the
   moment a bridge died.  With the per-component ledger
   (:class:`repro.distributed.network.CongestNetwork`), a rebuild floods one
   BFS tree per component and every wave is charged inside the component that
   executes it.  On the ``fragmenting_churn`` scenario (bridged clusters, the
   bridges cut and restored while chord churn hits both fragments) the
   harness asserts that local repair still uses strictly fewer total CONGEST
   rounds than rebuild-on-invalidation — the E4/E9 ordering, now preserved on
   a genuinely disconnecting workload — that the broadcast forest really held
   multiple per-component trees (``max_broadcast_components >= 2``), that the
   per-component accounting never undercharges (each config costs at least
   its ``component_accounting=False`` legacy twin), and that parent maps stay
   byte-identical across every configuration *and* the in-memory core driver
   after every update.

2. **Center-rooted voluntary rebuilds are strictly shallower at comparable
   round cost.**  On a path whose updates (and therefore observed initiators)
   hug one end, ``voluntary_root="initiator"`` can never fix the depth — the
   best observed initiator is itself peripheral, so the drift account sees no
   gap and the broadcast tree rides eccentricity ``~n`` forever.  The 2-sweep
   center approximation (two accounted BFS sweeps, ``center_sweeps``) roots
   the voluntary rebuild near the true center instead: the harness asserts at
   least one voluntary rebuild fires, the resulting broadcast depth is
   *strictly* smaller than the initiator configuration's (about the component
   radius, ``~n/2``), total rounds do not regress, and the maintained DFS
   trees stay byte-identical across both configurations and the core driver
   throughout.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table, scale_sizes
from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.core.updates import EdgeDeletion, EdgeInsertion
from repro.distributed.distributed_dfs import DistributedDynamicDFS
from repro.graph.generators import path_graph
from repro.metrics.counters import MetricsRecorder
from repro.workloads.scenarios import build_scenario

UPDATES = 80

CONFIGS = [
    ("rebuild_on_invalidation", dict(local_repair=False)),
    ("repair", dict(local_repair=True)),
]


@pytest.mark.benchmark(group="E10-fragmentation")
def test_repair_vs_rebuild_ordering_survives_fragmentation(benchmark):
    cases = [
        (scale_sizes([96], [60])[0], scale_sizes([1], [3])[0]),
        (scale_sizes([120], [72])[0], scale_sizes([5], [2])[0]),
    ]
    labels = []
    rounds_by_config = {name: [] for name, _ in CONFIGS}
    legacy_rounds_by_config = {name: [] for name, _ in CONFIGS}
    repairs, fallbacks, components = [], [], []
    for n, seed in cases:
        scenario = build_scenario("fragmenting_churn", n=n, seed=seed, updates=UPDATES)
        updates = scenario.updates[:UPDATES]
        reference = FullyDynamicDFS(scenario.graph, rebuild_every=1)
        drivers = {}
        for name, kwargs in CONFIGS:
            for legacy in (False, True):
                metrics = MetricsRecorder(name, strict=True)
                drivers[(name, legacy)] = (
                    DistributedDynamicDFS(
                        scenario.graph,
                        rebuild_every=None,
                        component_accounting=not legacy,
                        metrics=metrics,
                        **kwargs,
                    ),
                    metrics,
                )
        # Stepwise so divergence (which canonical answers forbid) is caught
        # at the offending update — and checked against the core driver too.
        for step, update in enumerate(updates):
            reference.apply(update)
            expected = reference.parent_map()
            for (name, legacy), (driver, _) in drivers.items():
                driver.apply(update)
                assert driver.parent_map() == expected, (
                    f"{name} (legacy={legacy}) diverged from the core driver "
                    f"at update {step} (n={n})"
                )
        totals = {key: driver.rounds() for key, (driver, _) in drivers.items()}
        # The ordering the per-component ledger exists to keep meaningful:
        # local repair beats rebuild-on-invalidation on a fragmenting
        # workload, under the accounting that actually charges each fragment.
        assert totals[("repair", False)] < totals[("rebuild_on_invalidation", False)], (
            n,
            totals,
        )
        # Conservativeness: per-component charging never undercharges the
        # legacy free-dissemination accounting, for either policy.
        for name, _ in CONFIGS:
            assert totals[(name, False)] >= totals[(name, True)], (name, totals)
        _, repair_metrics = drivers[("repair", False)]
        assert repair_metrics["bfs_repairs"] >= 1
        # The bridge cuts really fragmented the broadcast forest into
        # per-component trees (not legacy singleton dust).
        assert repair_metrics["max_broadcast_components"] >= 2
        labels.append(f"n={n},seed={seed}")
        for name, _ in CONFIGS:
            rounds_by_config[name].append(totals[(name, False)])
            legacy_rounds_by_config[name].append(totals[(name, True)])
        repairs.append(repair_metrics["bfs_repairs"])
        fallbacks.append(repair_metrics["bfs_repair_fallbacks"])
        components.append(repair_metrics["max_broadcast_components"])

    record_table(
        benchmark,
        "E10_fragmenting_churn_total_rounds",
        list(range(len(labels))),
        {
            **{f"rounds_{name}": vals for name, vals in rounds_by_config.items()},
            **{
                f"legacy_rounds_{name}": vals
                for name, vals in legacy_rounds_by_config.items()
            },
            "bfs_repairs": repairs,
            "bfs_repair_fallbacks": fallbacks,
            "max_broadcast_components": components,
        },
    )
    print("cases:", ", ".join(labels))

    scenario = build_scenario(
        "fragmenting_churn", n=cases[0][0], seed=cases[0][1], updates=UPDATES
    )

    def run():
        dist = DistributedDynamicDFS(scenario.graph, rebuild_every=None, local_repair=True)
        dist.apply_all(scenario.updates[:20])

    benchmark(run)


def _peripheral_chord_updates(n: int, count: int):
    """Chord churn pinned to one end of a path: every observed initiator is
    peripheral, so only a center-rooted voluntary rebuild can shed the
    broadcast tree's ``~n`` depth.  The chords are ancestor-descendant in the
    DFS tree, so the maintained tree never changes — the experiment isolates
    the broadcast-root choice."""
    updates = []
    for i in range(count):
        j = 3 + (i % 5)
        updates.append(EdgeInsertion(0, j))
        updates.append(EdgeDeletion(0, j))
    return updates


@pytest.mark.benchmark(group="E10-fragmentation")
def test_center_rooted_voluntary_rebuilds_are_shallower(benchmark):
    n = scale_sizes([96], [48])[0]
    graph = path_graph(n)
    updates = _peripheral_chord_updates(n, 12)
    reference = FullyDynamicDFS(graph, rebuild_every=1)
    drivers = {}
    for mode in ("center", "initiator"):
        metrics = MetricsRecorder(mode, strict=True)
        drivers[mode] = (
            DistributedDynamicDFS(
                graph,
                rebuild_every=None,
                local_repair=True,
                voluntary_root=mode,
                metrics=metrics,
            ),
            metrics,
        )
    for step, update in enumerate(updates):
        reference.apply(update)
        expected = reference.parent_map()
        for mode, (driver, _) in drivers.items():
            driver.apply(update)
            assert driver.parent_map() == expected, (
                f"{mode} diverged from the core driver at update {step}"
            )
    center_driver, center_metrics = drivers["center"]
    initiator_driver, initiator_metrics = drivers["initiator"]
    center_depth = max(center_driver._backend.bfs_depth.values())
    initiator_depth = max(initiator_driver._backend.bfs_depth.values())
    assert center_metrics["voluntary_rebuilds"] >= 1, "center rebuild never fired"
    assert (
        center_metrics["center_sweeps"] == 2 * center_metrics["voluntary_rebuilds"]
    ), "every center-rooted rebuild pays exactly two accounted sweeps"
    # The headline: strictly shallower trees at comparable (here: strictly
    # lower) total round cost — every wave after the voluntary rebuild pays
    # roughly the component radius instead of the full path length.
    assert center_depth < initiator_depth, (center_depth, initiator_depth)
    assert center_driver.rounds() <= initiator_driver.rounds(), (
        center_driver.rounds(),
        initiator_driver.rounds(),
    )

    record_table(
        benchmark,
        "E10_center_vs_initiator",
        [n],
        {
            "center_final_depth": [center_depth],
            "initiator_final_depth": [initiator_depth],
            "center_total_rounds": [center_driver.rounds()],
            "initiator_total_rounds": [initiator_driver.rounds()],
            "voluntary_rebuilds": [center_metrics["voluntary_rebuilds"]],
            "center_sweeps": [center_metrics["center_sweeps"]],
            "max_voluntary_rebuild_root_depth": [
                center_metrics["max_voluntary_rebuild_root_depth"]
            ],
        },
    )

    def run():
        dist = DistributedDynamicDFS(graph, rebuild_every=None, local_repair=True)
        dist.apply_all(updates[:8])

    benchmark(run)
