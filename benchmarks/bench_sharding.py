"""E13 — sharded multi-tenant engine: aggregate fleet throughput.

Documented in ``docs/benchmarks.md`` (E13).

Claim: a fleet of 10^3 independent tenant graphs behind the
:class:`~repro.shard.ShardRouter` (4 workers, 16 logical shards, auto
amortized rebuild policy, snapshot cadence ``publish_every=4``, one routed
``apply_many`` round trip per churn round) sustains **>= 3x** the aggregate
update throughput of the classic single-process deployment — one
``FullyDynamicDFS(rebuild_every=1)`` + per-commit-publishing
``DFSTreeService`` per tenant, updates applied one by one — with
*byte-identical* per-tenant parent maps, including across a mid-churn shard
rebalance (drain, replay-from-genesis, byte-identity asserted by the router).

The floor is configuration-honest on a single core: the sharded stack wins by
amortizing ``D`` rebuilds across each tenant's churn (the dense n=512 tenant
graphs make a per-update rebuild cost visibly more than overlay service) and
by batching the routing round trips; worker-process parallelism adds real
speedup on top wherever CI has more than one core.

Per-update p50/p99 latencies (baseline) and per-round routing latencies
(sharded) are persisted to ``BENCH_E13.json`` alongside the deterministic
fleet counters; CI reruns the small tier and diffs the trajectory with
``tools/bench_compare.py``.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import emit_bench, record_table, scale_sizes
from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.metrics.counters import MetricsRecorder
from repro.service import DFSTreeService
from repro.shard import ShardRouter
from repro.workloads.multi_tenant import multi_tenant_churn, round_items

THROUGHPUT_SPEEDUP_MIN = 3.0
ROUNDS = 3
UPDATES_PER_ROUND = 4
TENANT_N = 512
TENANT_DEGREE = 16.0
NUM_WORKERS = 4
NUM_SHARDS = 16


def _percentile(samples, q):
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx]


@pytest.mark.benchmark(group="E13-sharding")
def test_sharded_fleet_beats_single_process_baseline(benchmark):
    num_tenants = scale_sizes([1_000], [100])[0]
    tenants = multi_tenant_churn(
        num_tenants,
        n=TENANT_N,
        rounds=ROUNDS,
        updates_per_round=UPDATES_PER_ROUND,
        seed=42,
        avg_degree=TENANT_DEGREE,
    )
    total_updates = num_tenants * ROUNDS * UPDATES_PER_ROUND

    # ------------------------------------------------------------------ #
    # Baseline: the classic single-process deployment, one tenant at a
    # time (per-update D rebuild, per-commit snapshot publication, scalar
    # apply loop).  Drivers are discarded after their run — only the final
    # parent map (the byte-identity currency) is kept.
    # ------------------------------------------------------------------ #
    baseline_maps = {}
    update_latencies_ms = []
    t0 = time.perf_counter()
    for t in tenants:
        driver = FullyDynamicDFS(t.graph.copy(), rebuild_every=1)
        DFSTreeService(driver, publish_every=1)
        for rnd in t.rounds:
            for update in rnd:
                u0 = time.perf_counter()
                driver.apply(update)
                update_latencies_ms.append((time.perf_counter() - u0) * 1e3)
        baseline_maps[t.tenant_id] = driver.parent_map()
    baseline_s = time.perf_counter() - t0
    baseline_tput = total_updates / baseline_s

    # ------------------------------------------------------------------ #
    # Sharded: the same fleet behind the router — one apply_many round
    # trip per churn round, one mid-churn shard rebalance.
    # ------------------------------------------------------------------ #
    router_metrics = MetricsRecorder("e13_router", strict=True)
    round_latencies_ms = []
    with ShardRouter(
        num_workers=NUM_WORKERS,
        num_shards=NUM_SHARDS,
        mode="process",
        publish_every=4,
        metrics=router_metrics,
    ) as router:
        for t in tenants:
            router.create_tenant(t.tenant_id, t.graph)
        moved_shard = router.shard_of(tenants[0].tenant_id)
        t0 = time.perf_counter()
        for rnd in range(ROUNDS):
            if rnd == 1:  # rebalance mid-churn; byte-identity asserted inside
                router.move_shard(
                    moved_shard, (router.worker_of_shard(moved_shard) + 1) % NUM_WORKERS
                )
            r0 = time.perf_counter()
            router.apply_many(round_items(tenants, rnd))
            round_latencies_ms.append((time.perf_counter() - r0) * 1e3)
        sharded_s = time.perf_counter() - t0
        sharded_tput = total_updates / sharded_s

        # Byte-identical per-tenant parent maps across deployments.
        for t in tenants:
            assert router.parent_map(t.tenant_id) == baseline_maps[t.tenant_id], t.tenant_id

        fleet = router.fleet_metrics()

    speedup = sharded_tput / baseline_tput
    assert speedup >= THROUGHPUT_SPEEDUP_MIN, (
        f"E13: sharded fleet only {speedup:.2f}x the single-process baseline "
        f"(floor {THROUGHPUT_SPEEDUP_MIN}x) at {num_tenants} tenants"
    )

    # Deterministic fleet counters: the routed volume, the rebalance, and the
    # replay it performed.
    assert fleet["shard_tenants_created"] == num_tenants
    assert fleet["shard_updates_routed"] == total_updates
    assert fleet["shard_moves"] == 1
    assert fleet["updates"] == total_updates + fleet["shard_replayed_updates"]

    record_table(
        benchmark,
        "E13_fleet_throughput",
        [num_tenants],
        {
            "throughput_speedup": [round(speedup, 1)],
            "updates_per_sec_baseline": [round(baseline_tput, 0)],
            "updates_per_sec_sharded": [round(sharded_tput, 0)],
            "tenants_rebalanced": [int(fleet["shard_tenants_moved"])],
            "replayed_updates": [int(fleet["shard_replayed_updates"])],
        },
    )
    emit_bench(
        "E13",
        timings_ms={
            "baseline_churn": round(baseline_s * 1e3, 3),
            "sharded_churn": round(sharded_s * 1e3, 3),
            "baseline_update_p50": round(_percentile(update_latencies_ms, 0.50), 3),
            "baseline_update_p99": round(_percentile(update_latencies_ms, 0.99), 3),
            "sharded_round_p50": round(_percentile(round_latencies_ms, 0.50), 3),
            "sharded_round_p99": round(_percentile(round_latencies_ms, 0.99), 3),
        },
        counters={
            "num_tenants": num_tenants,
            "tenant_n": TENANT_N,
            "rounds": ROUNDS,
            "updates_per_round": UPDATES_PER_ROUND,
            "num_workers": NUM_WORKERS,
            "num_shards": NUM_SHARDS,
            "updates_routed": int(fleet["shard_updates_routed"]),
            "update_batches_routed": int(fleet["shard_update_batches_routed"]),
            "shard_moves": int(fleet["shard_moves"]),
            "tenants_rebalanced": int(fleet["shard_tenants_moved"]),
            "replayed_updates": int(fleet["shard_replayed_updates"]),
            "snapshots_published": int(fleet["snapshots_published"]),
        },
        asserts={"throughput_speedup_min": THROUGHPUT_SPEEDUP_MIN},
    )

    # The repeatable hot loop for pytest-benchmark: a routed snapshot query
    # round against a small resident fleet (the claim above is the full run).
    bench_tenants = multi_tenant_churn(
        8, n=64, rounds=1, updates_per_round=UPDATES_PER_ROUND, seed=7
    )
    with ShardRouter(num_workers=2, num_shards=4, mode="inline") as small:
        for t in bench_tenants:
            small.create_tenant(t.tenant_id, t.graph)
            small.apply(t.tenant_id, t.rounds[0])
        probes = {
            t.tenant_id: sorted(t.graph.vertices())[:16] for t in bench_tenants
        }

        def one_query_round():
            for tenant_id, verts in probes.items():
                small.query(tenant_id, "connected", verts[:8], verts[8:])

        benchmark(one_query_round)
