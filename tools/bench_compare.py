#!/usr/bin/env python3
"""Diff two ``BENCH_<experiment>.json`` trajectory files.

Usage::

    python tools/bench_compare.py BASELINE.json CURRENT.json [--timing-tolerance 4.0]

Comparison rules (see docs/benchmarks.md for the schema):

* ``schema`` / ``experiment`` / ``scale`` must match exactly — comparing a
  ``small`` smoke run against a committed ``normal`` trajectory is an error,
  not a perf regression.
* ``counters`` and ``asserts`` must match exactly: they are deterministic
  model quantities (work counts, probe counts, enforced speedup floors), so
  *any* drift is a behaviour change.
* ``timings_ms`` are wall-clock and machine-dependent: each entry must agree
  within a multiplicative tolerance band (default 4x either way).  Keys must
  match exactly.
* ``tables``: integer leaves compare exactly (they are counters); float
  leaves use the timing tolerance (they may be timing-derived, e.g. the E11
  speedup columns).

Exits 0 when the trajectories agree, 1 with a per-key report otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List


def _within(a: float, b: float, tol: float) -> bool:
    if a == b:
        return True
    if a <= 0 or b <= 0:
        return False
    ratio = a / b if a > b else b / a
    return ratio <= tol


def _compare_scalars(path: str, base, cur, tol: float, errors: List[str], *, exact: bool) -> None:
    if isinstance(base, bool) or isinstance(cur, bool) or not all(
        isinstance(x, (int, float)) for x in (base, cur)
    ):
        if base != cur:
            errors.append(f"{path}: {base!r} != {cur!r}")
        return
    if exact or (isinstance(base, int) and isinstance(cur, int)):
        if base != cur:
            errors.append(f"{path}: expected {base!r}, got {cur!r} (exact match required)")
    elif not _within(float(base), float(cur), tol):
        errors.append(f"{path}: {base!r} vs {cur!r} exceeds {tol}x tolerance band")


def _compare_mapping(path: str, base: dict, cur: dict, tol: float, errors: List[str], *, exact: bool) -> None:
    for key in sorted(set(base) | set(cur)):
        sub = f"{path}.{key}"
        if key not in base:
            errors.append(f"{sub}: only in current")
        elif key not in cur:
            errors.append(f"{sub}: only in baseline")
        else:
            b, c = base[key], cur[key]
            if isinstance(b, dict) and isinstance(c, dict):
                _compare_mapping(sub, b, c, tol, errors, exact=exact)
            elif isinstance(b, list) and isinstance(c, list):
                if len(b) != len(c):
                    errors.append(f"{sub}: length {len(b)} != {len(c)}")
                else:
                    for i, (bi, ci) in enumerate(zip(b, c)):
                        _compare_scalars(f"{sub}[{i}]", bi, ci, tol, errors, exact=exact)
            else:
                _compare_scalars(sub, b, c, tol, errors, exact=exact)


def compare(baseline: dict, current: dict, timing_tolerance: float) -> List[str]:
    """Return a list of mismatch descriptions (empty = trajectories agree)."""
    errors: List[str] = []
    for key in ("schema", "experiment", "scale"):
        if baseline.get(key) != current.get(key):
            errors.append(
                f"{key}: baseline {baseline.get(key)!r} != current {current.get(key)!r}"
            )
    if errors:  # different experiment/scale: element-wise diffs are noise
        return errors
    _compare_mapping("counters", baseline.get("counters", {}), current.get("counters", {}), timing_tolerance, errors, exact=True)
    _compare_mapping("asserts", baseline.get("asserts", {}), current.get("asserts", {}), timing_tolerance, errors, exact=True)
    _compare_mapping("timings_ms", baseline.get("timings_ms", {}), current.get("timings_ms", {}), timing_tolerance, errors, exact=False)
    _compare_mapping("tables", baseline.get("tables", {}), current.get("tables", {}), timing_tolerance, errors, exact=False)
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_<experiment>.json")
    parser.add_argument("current", help="freshly generated BENCH_<experiment>.json")
    parser.add_argument(
        "--timing-tolerance",
        type=float,
        default=4.0,
        help="allowed multiplicative drift for wall-clock entries (default 4x)",
    )
    args = parser.parse_args(argv)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.current) as fh:
        current = json.load(fh)
    errors = compare(baseline, current, args.timing_tolerance)
    if errors:
        print(f"TRAJECTORY MISMATCH ({args.baseline} vs {args.current}):")
        for err in errors:
            print(f"  - {err}")
        return 1
    print(
        f"OK: {args.current} matches the committed trajectory "
        f"(counters exact, timings within {args.timing_tolerance}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
