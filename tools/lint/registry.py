"""Static loader for the ``WELL_KNOWN_COUNTERS`` registry.

The counter-registry rule must run on a clean checkout (no installs, no
importable ``repro``), so instead of importing
:mod:`repro.metrics.counters` it parses the module's AST and extracts the
``WELL_KNOWN_COUNTERS`` dict literal: every key with its line number (so
dead-counter findings anchor to the exact registry entry) and description.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict

#: Repo-relative path of the registry module (also the recorder implementation,
#: which the counter-registry rule skips: its ``inc(f"time_{key}")`` plumbing
#: is the mechanism the registry governs, not a call site).
REGISTRY_REL = "src/repro/metrics/counters.py"

REGISTRY_NAME = "WELL_KNOWN_COUNTERS"


@dataclass(frozen=True)
class RegistryEntry:
    """One registered counter: its name, docstring and registry line."""

    name: str
    description: str
    line: int


def load_registry(root: Path) -> Dict[str, RegistryEntry]:
    """Parse ``WELL_KNOWN_COUNTERS`` out of the checkout rooted at *root*.

    Raises :class:`FileNotFoundError` when the registry module is missing and
    :class:`ValueError` when the dict literal cannot be found — repro-lint
    refuses to run without a registry rather than passing vacuously.
    """
    path = root / REGISTRY_REL
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        if not any(isinstance(t, ast.Name) and t.id == REGISTRY_NAME for t in targets):
            continue
        value = node.value
        if not isinstance(value, ast.Dict):
            break
        entries: Dict[str, RegistryEntry] = {}
        for key, val in zip(value.keys, value.values):
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                desc = val.value if isinstance(val, ast.Constant) and isinstance(val.value, str) else ""
                entries[key.value] = RegistryEntry(key.value, desc, key.lineno)
        return entries
    raise ValueError(f"{REGISTRY_NAME} dict literal not found in {path}")
