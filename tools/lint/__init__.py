"""repro-lint: AST-based invariant checkers for the dynamic-DFS reproduction.

Every contract the repo enforces dynamically — strict counter registries,
the numpy-free dict backend, deterministic core paths, the paired
``begin_update``/``end_update`` writer protocol, the documented public API —
is proven statically here, in seconds, before any test runs.  See
``docs/lint.md`` for the rule catalog and the suppression policy.

Programmatic entry points::

    from tools.lint import build_linter, lint_text

    result = build_linter(repo_root).lint_paths(["src", "tests"])
    diags = lint_text(source, "src/repro/core/example.py", repo_root)
"""

from __future__ import annotations

from pathlib import Path
from typing import List

from tools.lint.cli import DEFAULT_PATHS, MAX_SUPPRESSIONS, build_linter, main
from tools.lint.core import Checker, Diagnostic, FileContext, Linter, LintResult

__all__ = [
    "Checker",
    "Diagnostic",
    "FileContext",
    "Linter",
    "LintResult",
    "DEFAULT_PATHS",
    "MAX_SUPPRESSIONS",
    "build_linter",
    "lint_text",
    "main",
]


def lint_text(source: str, rel: str, root: Path) -> List[Diagnostic]:
    """Per-file diagnostics for in-memory *source* pretending to live at the
    repo-relative path *rel* (suppressions applied; cross-file rules skipped).

    This is the fixture-test entry point: the registry is loaded from the
    real checkout at *root*, while the checked source never touches disk.
    """
    linter = build_linter(root)
    result = linter.lint_sources({rel: source})
    return result.findings
