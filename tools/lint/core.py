"""repro-lint framework core: diagnostics, suppressions, checkers, the runner.

The framework is deliberately small: a :class:`Checker` parses nothing itself
— every scanned file is parsed once into a :class:`FileContext` (AST + source
lines + per-line suppressions) and handed to every checker whose
:meth:`Checker.applies_to` accepts the file's repo-relative path.  Checkers
yield :class:`Diagnostic` objects; the :class:`Linter` applies the per-line
``repro-lint: disable=RULE`` comment suppressions, counts them, and flags
stale directives (a suppression that no longer suppresses anything is itself
a finding, so the allowlist can only shrink or be consciously grown).

Cross-file rules (the dead-counter report needs every call site before it can
call a registry entry dead) implement :meth:`Checker.finalize`, which runs
once after every file has been checked.

Everything here is standard library only: CI runs repro-lint on a clean
checkout with no installs, before any test dependency exists.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Per-line suppression directive: a comment of the form
#: ``repro-lint: disable=rule-a,rule-b`` suppresses those rules on that line
#: only; ``disable=all`` suppresses every rule on the line.  Directives are
#: counted and capped by the CLI.
SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_, -]+)")


@dataclass(frozen=True)
class Diagnostic:
    """One finding: rule id, location, message and a how-to-fix hint."""

    rule: str
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str
    hint: str = ""

    def format(self) -> str:
        """``path:line:col: rule-id message (hint: ...)`` — one line."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text


@dataclass
class FileContext:
    """One parsed file: repo-relative path, source, AST and suppressions."""

    rel: str
    source: str
    tree: ast.Module
    #: line number -> set of rule ids disabled on that line (may hold "all").
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    @property
    def lines(self) -> List[str]:
        """Source split into lines (1-indexed via ``lines[line - 1]``)."""
        return self.source.splitlines()


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Per-line ``repro-lint: disable=...`` comment directives in *source*."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = SUPPRESS_RE.search(line)
        if m:
            rules = {part.strip() for part in m.group(1).split(",") if part.strip()}
            if rules:
                out[lineno] = rules
    return out


class Checker:
    """Base class for one invariant checker (may emit several rule ids)."""

    #: short name shown by ``--list-rules``
    name: str = "base"
    #: every rule id this checker may emit
    rules: Tuple[str, ...] = ()

    def applies_to(self, rel: str) -> bool:
        """Whether this checker wants to see the file at repo-relative *rel*."""
        return True

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        """Per-file pass: yield findings for *ctx*."""
        return ()

    def finalize(self, contexts: Sequence[FileContext]) -> Iterable[Diagnostic]:
        """Cross-file pass, run once after every file was checked."""
        return ()


@dataclass
class LintResult:
    """Outcome of one lint run (findings already filtered by suppressions)."""

    findings: List[Diagnostic]
    suppressed: List[Diagnostic]
    #: total ``disable=`` directives seen in the scanned tree (used or not)
    directives: int
    files: int

    @property
    def ok(self) -> bool:
        """True when the run produced no findings."""
        return not self.findings


def _receiver_name(node: ast.expr) -> str:
    """Trailing identifier of a call receiver (``self.metrics`` -> "metrics")."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def iter_python_files(root: Path, paths: Sequence[str]) -> List[Path]:
    """Every ``.py`` file under *paths* (repo-relative to *root*), sorted.

    Skips ``__pycache__``, hidden directories, and lint fixture corpora
    (``tests/lint/fixtures`` holds deliberately-bad snippets).
    """
    files: Set[Path] = set()
    for p in paths:
        base = (root / p).resolve() if not Path(p).is_absolute() else Path(p)
        if base.is_file() and base.suffix == ".py":
            files.add(base)
            continue
        for f in base.rglob("*.py"):
            rel_parts = f.relative_to(base).parts
            if any(part == "__pycache__" or part.startswith(".") for part in rel_parts):
                continue
            files.add(f)
    out = []
    for f in sorted(files):
        rel = _relativize(root, f)
        if rel.startswith("tests/lint/fixtures/"):
            continue
        out.append(f)
    return out


def _relativize(root: Path, path: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


class Linter:
    """Runs a checker suite over a file tree rooted at *root*."""

    def __init__(self, root: Path, checkers: Sequence[Checker]) -> None:
        self.root = Path(root)
        self.checkers = list(checkers)

    # ------------------------------------------------------------------ #
    # Context loading
    # ------------------------------------------------------------------ #
    def load_context(self, source: str, rel: str) -> FileContext:
        """Parse *source* (repo-relative *rel*) into a :class:`FileContext`.

        Raises :class:`SyntaxError` on unparseable input — a file the linter
        cannot parse is itself a finding at the CLI layer.
        """
        tree = ast.parse(source, filename=rel)
        return FileContext(rel=rel, source=source, tree=tree,
                           suppressions=parse_suppressions(source))

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #
    def check_context(self, ctx: FileContext) -> List[Diagnostic]:
        """Raw per-file diagnostics for *ctx* (suppressions not yet applied)."""
        out: List[Diagnostic] = []
        for checker in self.checkers:
            if checker.applies_to(ctx.rel):
                out.extend(checker.check(ctx))
        return out

    def lint_sources(self, sources: Dict[str, str]) -> LintResult:
        """Lint in-memory ``{rel_path: source}`` files (the test entry point)."""
        contexts = [self.load_context(text, rel) for rel, text in sorted(sources.items())]
        return self._run(contexts)

    def lint_paths(self, paths: Sequence[str]) -> LintResult:
        """Lint every python file under *paths* (relative to the root)."""
        contexts: List[FileContext] = []
        raw: List[Diagnostic] = []
        for f in iter_python_files(self.root, paths):
            rel = _relativize(self.root, f)
            try:
                contexts.append(self.load_context(f.read_text(encoding="utf-8"), rel))
            except SyntaxError as exc:
                raw.append(Diagnostic(
                    rule="parse-error", path=rel, line=exc.lineno or 1,
                    col=exc.offset or 0, message=f"cannot parse: {exc.msg}"))
        return self._run(contexts, extra=raw)

    def _run(self, contexts: Sequence[FileContext],
             extra: Optional[List[Diagnostic]] = None) -> LintResult:
        raw: List[Diagnostic] = list(extra or ())
        for ctx in contexts:
            raw.extend(self.check_context(ctx))
        for checker in self.checkers:
            raw.extend(checker.finalize(contexts))
        return self._apply_suppressions(contexts, raw)

    # ------------------------------------------------------------------ #
    # Suppressions
    # ------------------------------------------------------------------ #
    def _apply_suppressions(self, contexts: Sequence[FileContext],
                            raw: List[Diagnostic]) -> LintResult:
        by_rel = {ctx.rel: ctx for ctx in contexts}
        findings: List[Diagnostic] = []
        suppressed: List[Diagnostic] = []
        used: Set[Tuple[str, int]] = set()
        for diag in raw:
            ctx = by_rel.get(diag.path)
            rules = ctx.suppressions.get(diag.line, set()) if ctx else set()
            if diag.rule in rules or "all" in rules:
                suppressed.append(diag)
                used.add((diag.path, diag.line))
            else:
                findings.append(diag)
        directives = 0
        for ctx in contexts:
            for line, rules in sorted(ctx.suppressions.items()):
                directives += 1
                if (ctx.rel, line) not in used:
                    findings.append(Diagnostic(
                        rule="unused-suppression", path=ctx.rel, line=line, col=0,
                        message=f"suppression for {', '.join(sorted(rules))} no longer "
                                "suppresses anything",
                        hint="delete the stale repro-lint disable comment"))
        findings.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
        return LintResult(findings=findings, suppressed=suppressed,
                          directives=directives, files=len(contexts))
