"""repro-lint command line.

Usage (from the repo root; stdlib only, no installs needed)::

    python -m tools.lint                      # lint the default tree
    python -m tools.lint src/ tests/          # lint a subset
    python -m tools.lint --list-rules         # rule catalog one-liners
    python -m tools.lint --dead-counters      # registry liveness report

Exit status is non-zero on any finding, on an unparseable file, or when the
number of inline ``repro-lint: disable=`` comment directives exceeds the pinned cap
(``MAX_SUPPRESSIONS`` — grow it consciously, in the same commit that adds the
suppression; ``tests/lint/test_zero_baseline.py`` pins the exact count).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from tools.lint.core import Linter, LintResult
from tools.lint.rules import default_checkers
from tools.lint.rules.counters import CounterRegistryChecker

#: Paths linted when none are given (the zero-baseline command of CI).
DEFAULT_PATHS = ("src", "tests", "benchmarks", "tools")

#: Hard cap on inline suppression directives in the tree.  The shipped
#: allowlist (see docs/lint.md) uses exactly this many; adding one more means
#: raising the cap here *and* re-pinning tests/lint/test_zero_baseline.py.
MAX_SUPPRESSIONS = 4


def build_linter(root: Path) -> Linter:
    """The shipped checker suite over the checkout rooted at *root*."""
    return Linter(root, default_checkers(root))


def _print_rules(linter: Linter) -> None:
    print("repro-lint rule catalog (details: docs/lint.md)")
    for checker in linter.checkers:
        print(f"  {checker.name}: {', '.join(checker.rules)}")
    print("  (framework): parse-error, unused-suppression")


def _print_dead_counters(linter: Linter) -> None:
    for checker in linter.checkers:
        if isinstance(checker, CounterRegistryChecker):
            dead = sorted(checker.dead_counters(), key=lambda e: e.name)
            if not dead:
                print(f"dead-counter report: every registered counter is recorded "
                      f"somewhere ({len(checker.registry)} registered)")
                return
            print(f"dead-counter report: {len(dead)} of {len(checker.registry)} "
                  "registered counters are never recorded:")
            for entry in dead:
                print(f"  {entry.name}  (registry line {entry.line}): {entry.description}")
            return


def main(argv: Optional[List[str]] = None) -> int:
    """Run repro-lint; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant checker suite for the dynamic-DFS "
                    "reproduction (see docs/lint.md)")
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="files/directories to lint, relative to --root "
                             f"(default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--root", default=".",
                        help="repo root (registry + path scoping; default: cwd)")
    parser.add_argument("--max-suppressions", type=int, default=MAX_SUPPRESSIONS,
                        help="fail when the tree carries more inline disable "
                             f"directives than this (default: {MAX_SUPPRESSIONS})")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--dead-counters", action="store_true",
                        help="print the registry liveness report after linting")
    args = parser.parse_args(argv)

    root = Path(args.root).resolve()
    try:
        linter = build_linter(root)
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro-lint: cannot load the counter registry: {exc}", file=sys.stderr)
        return 2
    if args.list_rules:
        _print_rules(linter)
        return 0

    result: LintResult = linter.lint_paths(args.paths)
    for diag in result.findings:
        print(diag.format())
    if args.dead_counters:
        _print_dead_counters(linter)

    over_cap = result.directives > args.max_suppressions
    status = 1 if (result.findings or over_cap) else 0
    print(f"repro-lint: {len(result.findings)} finding(s), "
          f"{len(result.suppressed)} suppressed via {result.directives} "
          f"directive(s) (cap {args.max_suppressions}), "
          f"{result.files} file(s) scanned")
    if over_cap:
        print("repro-lint: suppression cap exceeded — shrink the allowlist or "
              "consciously raise MAX_SUPPRESSIONS (and re-pin "
              "tests/lint/test_zero_baseline.py)", file=sys.stderr)
    return status
