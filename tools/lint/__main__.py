"""``python -m tools.lint`` — run the repro-lint CLI."""

from tools.lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
