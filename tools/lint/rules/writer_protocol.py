"""Writer-protocol rules.

* ``writer-pairing`` — a call to ``*.begin_update(...)`` must be the
  statement *immediately before* a ``try`` whose ``finally`` calls
  ``*.end_update(...)``.  Anything between the two (or a pairing without the
  ``finally``) is the exact bug class PR 8 fixed by hand: an exception on the
  writer path leaves the backend mid-update.  Delegating overrides (a
  ``begin_update``/``end_update`` method calling ``super()``) are exempt —
  they *are* the protocol, not a use of it.
* ``except-swallow`` — a broad handler (``except Exception``,
  ``except BaseException``, or a bare ``except:``) in ``src/repro/`` must
  re-raise (a ``raise`` anywhere in its body) or account the error through a
  metrics ``.inc(...)``.  Handlers that deliberately forward the exception
  elsewhere (the shard-router "never fatal to the loop" replies) are the
  documented inline-suppression allowlist, counted and capped.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from tools.lint.core import Checker, Diagnostic, FileContext

_PROTOCOL_METHODS = ("begin_update", "end_update")


def _attr_call(node: ast.AST, attr: str) -> Optional[ast.Call]:
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
            and node.func.attr == attr):
        return node
    return None


def _contains_attr_call(nodes: Iterable[ast.stmt], attr: str) -> bool:
    return any(
        _attr_call(sub, attr) is not None
        for stmt in nodes for sub in ast.walk(stmt)
    )


def _is_broad(handler: ast.ExceptHandler) -> bool:
    def broad_name(node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id in ("Exception", "BaseException")

    if handler.type is None:
        return True
    if broad_name(handler.type):
        return True
    if isinstance(handler.type, ast.Tuple):
        return any(broad_name(el) for el in handler.type.elts)
    return False


class WriterProtocolChecker(Checker):
    """Rules ``writer-pairing`` and ``except-swallow``."""

    name = "writer-protocol"
    rules = ("writer-pairing", "except-swallow")

    def applies_to(self, rel: str) -> bool:
        """Core package only — the contract is about the shipped writer path."""
        return rel.startswith("src/repro/")

    # ------------------------------------------------------------------ #
    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        out: List[Diagnostic] = []
        self._walk(ctx.tree, ctx, out, in_protocol_method=False)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and _is_broad(node):
                self._check_handler(ctx, node, out)
        return out

    # ------------------------------------------------------------------ #
    # writer-pairing
    # ------------------------------------------------------------------ #
    def _walk(self, node: ast.AST, ctx: FileContext, out: List[Diagnostic],
              in_protocol_method: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            in_protocol_method = node.name in _PROTOCOL_METHODS
        for field in ("body", "orelse", "finalbody"):
            block = getattr(node, field, None)
            if isinstance(block, list):
                if not in_protocol_method:
                    self._check_block(block, ctx, out)
        for child in ast.iter_child_nodes(node):
            self._walk(child, ctx, out, in_protocol_method)

    def _check_block(self, block: List[ast.stmt], ctx: FileContext,
                     out: List[Diagnostic]) -> None:
        for i, stmt in enumerate(block):
            if not isinstance(stmt, ast.Expr):
                continue
            call = _attr_call(stmt.value, "begin_update")
            if call is None:
                continue
            nxt = block[i + 1] if i + 1 < len(block) else None
            paired = (isinstance(nxt, ast.Try) and nxt.finalbody
                      and _contains_attr_call(nxt.finalbody, "end_update"))
            if not paired:
                out.append(Diagnostic(
                    rule="writer-pairing", path=ctx.rel,
                    line=stmt.lineno, col=stmt.col_offset,
                    message="begin_update is not immediately followed by a "
                            "try whose finally calls end_update",
                    hint="wrap everything after begin_update in "
                         "try: ... finally: backend.end_update(update)"))

    # ------------------------------------------------------------------ #
    # except-swallow
    # ------------------------------------------------------------------ #
    def _check_handler(self, ctx: FileContext, handler: ast.ExceptHandler,
                       out: List[Diagnostic]) -> None:
        reraises = any(isinstance(sub, ast.Raise)
                       for stmt in handler.body for sub in ast.walk(stmt))
        accounts = _contains_attr_call(handler.body, "inc")
        if not (reraises or accounts):
            caught = "bare except" if handler.type is None else "except Exception"
            out.append(Diagnostic(
                rule="except-swallow", path=ctx.rel,
                line=handler.lineno, col=handler.col_offset,
                message=f"{caught} swallows the error without re-raising or "
                        "bumping an error counter",
                hint="narrow the exception type, re-raise, or account it via "
                     "metrics.inc(<error counter>)"))
