"""The repro-lint checker suite.

Five checkers, one per contract the repo makes (see ``docs/lint.md`` for the
full rule catalog):

* :class:`~tools.lint.rules.counters.CounterRegistryChecker` — every
  string-literal metric key is registered; every registered counter is bumped
  somewhere (dead-counter report).
* :class:`~tools.lint.rules.numpy_isolation.NumpyIsolationChecker` — numpy
  only at module level in the allowlisted array modules; lazy elsewhere.
* :class:`~tools.lint.rules.determinism.DeterminismChecker` — no unseeded
  ``random.*``, no wall-clock reads outside the metrics layer, no iteration
  over set-ordered collections in core paths.
* :class:`~tools.lint.rules.writer_protocol.WriterProtocolChecker` —
  ``begin_update`` paired with ``end_update`` in a ``finally``; no silent
  broad exception swallows.
* :class:`~tools.lint.rules.public_api.PublicApiChecker` — the exported API
  surface stays documented (docstrings + knob naming), checked statically.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List

from tools.lint.core import Checker
from tools.lint.registry import RegistryEntry, load_registry
from tools.lint.rules.counters import CounterRegistryChecker
from tools.lint.rules.determinism import DeterminismChecker
from tools.lint.rules.numpy_isolation import NumpyIsolationChecker
from tools.lint.rules.public_api import PublicApiChecker
from tools.lint.rules.writer_protocol import WriterProtocolChecker

__all__ = [
    "CounterRegistryChecker",
    "DeterminismChecker",
    "NumpyIsolationChecker",
    "PublicApiChecker",
    "WriterProtocolChecker",
    "default_checkers",
]


def default_checkers(root: Path) -> List[Checker]:
    """The full shipped suite for the checkout rooted at *root*."""
    registry: Dict[str, RegistryEntry] = load_registry(root)
    return [
        CounterRegistryChecker(registry),
        NumpyIsolationChecker(),
        DeterminismChecker(),
        WriterProtocolChecker(),
        PublicApiChecker(),
    ]
