"""Determinism rules for the core package.

The canonical-answers contract (byte-identical parent maps across every
driver×policy×backend combination) only holds if nothing in ``src/repro/``
consults a nondeterministic source.  Three rules:

* ``unseeded-random`` — calls through the module-global RNG
  (``random.random()``, ``random.shuffle(...)``, ...) and ``from random
  import shuffle``-style imports are forbidden; the only sanctioned entry
  point is ``random.Random(seed)`` with an explicit seed.
* ``wallclock-time`` — ``time.time``/``perf_counter``/``monotonic`` (and
  their ``_ns`` variants) may be read only inside the metrics layer and the
  allowlisted timing hooks; headline measurements are model quantities, and a
  wall-clock read anywhere else is either dead weight or a latent
  nondeterminism.
* ``set-iteration-order`` — iterating a set literal, set comprehension,
  ``set(...)``/``frozenset(...)`` call, or a set-algebra expression over them
  feeds hash-order into whatever the loop produces, and materialising one
  through ``list(...)``/``tuple(...)`` freezes that order into an ordered
  container.  ``sorted(...)`` over the same expression is the fix;
  order-preserving wrappers (``iter``, ``reversed``, ``enumerate``) are
  unwrapped before the check so they cannot launder a set.  Set
  *comprehensions over* sets are exempt — their result is unordered anyway.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from tools.lint.core import Checker, Diagnostic, FileContext

#: Wall-clock reading functions of the ``time`` module.
WALLCLOCK_FUNCS = (
    "time", "perf_counter", "monotonic", "process_time",
    "time_ns", "perf_counter_ns", "monotonic_ns", "process_time_ns",
)

#: Files outside ``src/repro/metrics/`` allowed to read the wall clock — the
#: documented timing hooks (``snapshot_build_ms`` is an informational timer
#: fed by the MVCC snapshot service's lazy index builds).
WALLCLOCK_ALLOWLIST = (
    "src/repro/service/snapshot.py",
)

#: Wrappers that preserve their argument's iteration order (so they cannot
#: make a set deterministic) — unwrapped before the set-likeness check.
#: ``list``/``tuple`` are handled separately: materialising a set through
#: them is flagged in its own right, wherever it happens.
_ORDER_PRESERVING = ("iter", "reversed", "enumerate")

#: Ordered containers whose construction freezes the set's hash order.
_MATERIALIZERS = ("list", "tuple")

_SET_ALGEBRA_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _is_setlike(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_ALGEBRA_OPS):
        return _is_setlike(node.left) or _is_setlike(node.right)
    return False


def _unwrap_order_preserving(node: ast.expr) -> ast.expr:
    while (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
           and node.func.id in _ORDER_PRESERVING and node.args):
        node = node.args[0]
    return node


class DeterminismChecker(Checker):
    """Rules ``unseeded-random``, ``wallclock-time``, ``set-iteration-order``."""

    name = "determinism"
    rules = ("unseeded-random", "wallclock-time", "set-iteration-order")

    def applies_to(self, rel: str) -> bool:
        """Core package only: tests, benchmarks and tooling may use both
        (hypothesis drives its own RNG; benchmarks measure wall-clock)."""
        return rel.startswith("src/repro/")

    # ------------------------------------------------------------------ #
    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        out: List[Diagnostic] = []
        wallclock_ok = (ctx.rel.startswith("src/repro/metrics/")
                        or ctx.rel in WALLCLOCK_ALLOWLIST)
        for node in ast.walk(ctx.tree):
            self._check_random(ctx, node, out)
            if not wallclock_ok:
                self._check_wallclock(ctx, node, out)
            self._check_set_iteration(ctx, node, out)
        return out

    # ------------------------------------------------------------------ #
    def _check_random(self, ctx: FileContext, node: ast.AST,
                      out: List[Diagnostic]) -> None:
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "random"
                and node.func.attr != "Random"):
            out.append(Diagnostic(
                rule="unseeded-random", path=ctx.rel,
                line=node.lineno, col=node.col_offset,
                message=f"random.{node.func.attr}() uses the unseeded "
                        "module-global RNG",
                hint="thread a random.Random(seed) instance through instead"))
        elif (isinstance(node, ast.ImportFrom) and node.module == "random"
              and node.level == 0
              and any(a.name != "Random" for a in node.names)):
            out.append(Diagnostic(
                rule="unseeded-random", path=ctx.rel,
                line=node.lineno, col=node.col_offset,
                message="importing module-global RNG functions from random "
                        "invites unseeded calls",
                hint="import random and use random.Random(seed)"))

    def _check_wallclock(self, ctx: FileContext, node: ast.AST,
                         out: List[Diagnostic]) -> None:
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "time"
                and node.func.attr in WALLCLOCK_FUNCS):
            out.append(Diagnostic(
                rule="wallclock-time", path=ctx.rel,
                line=node.lineno, col=node.col_offset,
                message=f"time.{node.func.attr}() outside the metrics layer "
                        "and its allowlisted timing hooks",
                hint="measure through MetricsRecorder.timer, or add the file to "
                     "the documented WALLCLOCK_ALLOWLIST if it is a real hook"))
        elif (isinstance(node, ast.ImportFrom) and node.module == "time"
              and node.level == 0
              and any(a.name in WALLCLOCK_FUNCS for a in node.names)):
            out.append(Diagnostic(
                rule="wallclock-time", path=ctx.rel,
                line=node.lineno, col=node.col_offset,
                message="importing wall-clock functions from time outside the "
                        "metrics layer",
                hint="import time lazily inside the metrics layer instead"))

    def _check_set_iteration(self, ctx: FileContext, node: ast.AST,
                             out: List[Diagnostic]) -> None:
        iters: List[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            # SetComp over a set stays unordered end to end — exempt.
            iters.extend(gen.iter for gen in node.generators)
        elif (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
              and node.func.id in _MATERIALIZERS and node.args
              and _is_setlike(node.args[0])):
            out.append(Diagnostic(
                rule="set-iteration-order", path=ctx.rel,
                line=node.lineno, col=node.col_offset,
                message=f"{node.func.id}(...) freezes a set's hash order into "
                        "an ordered container (nondeterminism in a core path)",
                hint="use sorted(...) instead"))
        for it in iters:
            it = _unwrap_order_preserving(it)
            if (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                    and it.func.id in _MATERIALIZERS):
                continue  # the materialisation branch already flags the inner set
            if _is_setlike(it):
                out.append(Diagnostic(
                    rule="set-iteration-order", path=ctx.rel,
                    line=it.lineno, col=it.col_offset,
                    message="iteration order of a set reaches the loop body "
                            "(hash-order nondeterminism in a core path)",
                    hint="wrap the iterable in sorted(...), or iterate a "
                         "deterministic container"))
