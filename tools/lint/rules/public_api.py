"""Public-API contract rules — the static port of ``tests/test_docstrings.py``.

* ``api-docstring`` — every class on the exported API surface, and every
  public method / property / classmethod / staticmethod / nested class
  defined in its body, must carry a non-empty docstring.  A listed class
  missing from its module is also a finding, so the surface map cannot rot
  when code moves (``tests/lint/test_api_surface_sync.py`` additionally pins
  this map against the runtime test's ``PUBLIC_CLASSES``).
* ``api-knob`` — driver class docstrings must keep naming the knobs they
  accept (the minimal "docs follow the code" check).

Unlike the runtime test, these run without importing ``repro`` at all — on a
clean checkout with no dependencies installed.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Tuple

from tools.lint.core import Checker, Diagnostic, FileContext

#: The exported API surface: repo-relative module -> class names.  Must stay
#: in sync with ``tests/test_docstrings.py::PUBLIC_CLASSES`` (pinned by
#: ``tests/lint/test_api_surface_sync.py``).
PUBLIC_API: Dict[str, Tuple[str, ...]] = {
    "src/repro/core/dynamic_dfs.py": ("FullyDynamicDFS",),
    "src/repro/core/fault_tolerant.py": ("FaultTolerantDFS",),
    "src/repro/streaming/semi_streaming_dfs.py": ("SemiStreamingDynamicDFS",),
    "src/repro/distributed/distributed_dfs.py": ("CongestBackend", "DistributedDynamicDFS"),
    "src/repro/distributed/network.py": ("CongestNetwork",),
    "src/repro/core/engine.py": ("Backend", "UpdateEngine"),
    "src/repro/core/maintenance.py": ("CostModel", "CostSignal", "MaintenanceController"),
    "src/repro/metrics/counters.py": ("MetricsRecorder",),
    "src/repro/service/service.py": ("DFSTreeService",),
    "src/repro/service/snapshot.py": ("TreeSnapshot",),
    "src/repro/service/batch.py": ("BatchingQueryFront",),
    "src/repro/shard/router.py": ("ShardRouter",),
    "src/repro/shard/worker.py": ("ShardWorker",),
    "src/repro/shard/placement.py": ("HashRing",),
}

#: Knob names each driver docstring must keep mentioning.
KNOB_DOCS: Dict[str, Tuple[str, ...]] = {
    "FullyDynamicDFS": ("rebuild_every",),
    "DistributedDynamicDFS": ("rebuild_every", "local_repair", "drift_rebuild_cost",
                              "voluntary_root", "component_accounting"),
}


class PublicApiChecker(Checker):
    """Rules ``api-docstring`` and ``api-knob``."""

    name = "public-api"
    rules = ("api-docstring", "api-knob")

    def applies_to(self, rel: str) -> bool:
        """Only the modules carrying the exported API surface."""
        return rel in PUBLIC_API

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        out: List[Diagnostic] = []
        classes = {node.name: node for node in ctx.tree.body
                   if isinstance(node, ast.ClassDef)}
        for name in PUBLIC_API[ctx.rel]:
            cls = classes.get(name)
            if cls is None:
                out.append(Diagnostic(
                    rule="api-docstring", path=ctx.rel, line=1, col=0,
                    message=f"public class {name} not found at module level",
                    hint="update PUBLIC_API in tools/lint/rules/public_api.py "
                         "and tests/test_docstrings.py together"))
                continue
            self._check_class(ctx, cls, out)
        return out

    # ------------------------------------------------------------------ #
    def _check_class(self, ctx: FileContext, cls: ast.ClassDef,
                     out: List[Diagnostic]) -> None:
        doc = ast.get_docstring(cls)
        if not (doc or "").strip():
            out.append(Diagnostic(
                rule="api-docstring", path=ctx.rel, line=cls.lineno, col=cls.col_offset,
                message=f"{cls.name} lacks a class docstring",
                hint="document the knobs, the counters they emit, and the complexity"))
        for knob in KNOB_DOCS.get(cls.name, ()):
            if knob not in (doc or ""):
                out.append(Diagnostic(
                    rule="api-knob", path=ctx.rel, line=cls.lineno, col=cls.col_offset,
                    message=f"{cls.name} docstring no longer names its {knob!r} knob",
                    hint="keep the accepted knobs listed in the class docstring"))
        for member in cls.body:
            if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef,
                                       ast.ClassDef)):
                continue
            if member.name.startswith("_"):
                continue
            if not (ast.get_docstring(member) or "").strip():
                kind = "nested class" if isinstance(member, ast.ClassDef) else "member"
                out.append(Diagnostic(
                    rule="api-docstring", path=ctx.rel,
                    line=member.lineno, col=member.col_offset,
                    message=f"undocumented public {kind} "
                            f"{cls.name}.{member.name}",
                    hint="document the knobs, the counters it emits, and the "
                         "complexity"))
