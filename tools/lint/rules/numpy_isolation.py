"""Backend-isolation rule: the dict backend must stay numpy-free.

``numpy-isolation`` — a module-level ``import numpy`` (or ``from numpy
import ...``) is allowed only in the allowlisted array modules; everywhere
else under ``src/`` the import must be *lazy* (inside a function body), so a
numpy-free install can import every module of the dict backend.  CI's
no-numpy job proves this dynamically by re-running the whole tier-1 suite;
this rule proves it in milliseconds by looking at the import statements.

Class bodies count as module level: a ``class``-scoped import executes at
import time.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from tools.lint.core import Checker, Diagnostic, FileContext

#: The only modules allowed to import numpy eagerly — the array backend's
#: storage core plus the backend gate that probes for numpy's presence.
ALLOWED_EAGER_NUMPY = (
    "src/repro/backends.py",
    "src/repro/graph/array_graph.py",
    "src/repro/core/array_structure_d.py",
)

_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _imports_numpy(node: ast.stmt) -> bool:
    if isinstance(node, ast.Import):
        return any(a.name == "numpy" or a.name.startswith("numpy.") for a in node.names)
    if isinstance(node, ast.ImportFrom):
        mod = node.module or ""
        return node.level == 0 and (mod == "numpy" or mod.startswith("numpy."))
    return False


class NumpyIsolationChecker(Checker):
    """Rule ``numpy-isolation``."""

    name = "numpy-isolation"
    rules = ("numpy-isolation",)

    def applies_to(self, rel: str) -> bool:
        """Only the installable package: tests/benchmarks may import freely
        (they guard with ``importorskip``/skip markers instead)."""
        return rel.startswith("src/")

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if ctx.rel in ALLOWED_EAGER_NUMPY:
            return ()
        out: List[Diagnostic] = []

        def visit(node: ast.AST, in_function: bool) -> None:
            if isinstance(node, (ast.Import, ast.ImportFrom)) and _imports_numpy(node):
                if not in_function:
                    out.append(Diagnostic(
                        rule="numpy-isolation", path=ctx.rel,
                        line=node.lineno, col=node.col_offset,
                        message="module-level numpy import outside the allowlisted "
                                "array modules breaks the numpy-free dict backend",
                        hint="move the import inside the function that needs it "
                             "(lazy import), or route through repro.backends"))
                return
            for child in ast.iter_child_nodes(node):
                visit(child, in_function or isinstance(node, _FUNCTIONS))

        visit(ctx.tree, in_function=False)
        return out
