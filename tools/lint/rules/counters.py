"""Counter-registry rules.

``MetricsRecorder(strict=True)`` already rejects unregistered counters at
runtime — but only on code paths a test actually drives.  These rules prove
the same contract statically for every call site:

* ``counter-registry`` — a string-literal key passed to
  ``inc``/``observe_max``/``set``/``timer`` must be registered in
  ``WELL_KNOWN_COUNTERS``.  ``observe_max`` keys match through the ``max_``
  alias exactly as :meth:`MetricsRecorder._check_registered` allows; ``timer``
  keys must be registered under their reported ``time_<key>`` name.
* ``dynamic-counter-key`` — a non-literal key cannot be checked statically;
  it is flagged so every such site is a conscious, suppressed decision (the
  recorder's own ``merge``/``timer`` plumbing lives in the skipped registry
  module).
* ``dead-counter`` — cross-file: every registered counter must be *recorded*
  somewhere in the scanned tree (tests count: a test-covered counter is a
  live contract).  This is the report that keeps ``docs/counters.md`` and
  the registry honest.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from tools.lint.core import Checker, Diagnostic, FileContext, _receiver_name
from tools.lint.registry import REGISTRY_REL, RegistryEntry

#: MetricsRecorder recording methods and how their key maps into the registry.
METRIC_METHODS = ("inc", "observe_max", "set", "timer")

#: Receivers accepted for the generic ``.set`` method (``.set`` appears in many
#: unrelated APIs, so it only counts on a recorder-shaped receiver;
#: ``inc``/``observe_max``/``timer`` are distinctive enough to match on any
#: receiver).
_SET_RECEIVERS = ("m", "rec", "recorder")


def _is_metric_call(node: ast.AST) -> Optional[Tuple[str, ast.Call]]:
    """``(method, call)`` when *node* is a MetricsRecorder recording call."""
    if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
        return None
    method = node.func.attr
    if method not in METRIC_METHODS:
        return None
    if method == "set":
        name = _receiver_name(node.func.value)
        if "metric" not in name and name not in _SET_RECEIVERS:
            return None
    return method, node


def _live_keys(method: str, key: str) -> Tuple[str, ...]:
    """Registry names a recording call keeps alive."""
    if method == "timer":
        return (f"time_{key}",)
    if method == "observe_max":
        return (key, f"max_{key}")
    return (key,)


def _registered(method: str, key: str, registry: Dict[str, RegistryEntry]) -> bool:
    return any(name in registry for name in _live_keys(method, key))


class CounterRegistryChecker(Checker):
    """Rules ``counter-registry``, ``dynamic-counter-key``, ``dead-counter``."""

    name = "counter-registry"
    rules = ("counter-registry", "dynamic-counter-key", "dead-counter")

    #: Files exempt from the registry rules: the recorder implementation (its
    #: ``inc(f"time_{key}")``/``merge`` plumbing is the mechanism the registry
    #: governs) and the recorder's own unit tests (which exercise the strict
    #: and permissive modes with deliberately-unregistered keys).
    EXEMPT = (REGISTRY_REL, "tests/metrics/test_metrics.py")

    def __init__(self, registry: Dict[str, RegistryEntry],
                 registry_rel: str = REGISTRY_REL) -> None:
        self.registry = registry
        self.registry_rel = registry_rel
        #: registry names observed recorded somewhere in the scanned tree
        self.live: Set[str] = set()

    def applies_to(self, rel: str) -> bool:
        """Everywhere except the recorder implementation and its unit tests."""
        return rel not in self.EXEMPT

    # ------------------------------------------------------------------ #
    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            match = _is_metric_call(node)
            if match is None:
                continue
            method, call = match
            if not call.args:
                continue
            key_node = call.args[0]
            if isinstance(key_node, ast.Constant) and isinstance(key_node.value, str):
                key = key_node.value
                self.live.update(n for n in _live_keys(method, key) if n in self.registry)
                if not _registered(method, key, self.registry):
                    yield Diagnostic(
                        rule="counter-registry", path=ctx.rel,
                        line=key_node.lineno, col=key_node.col_offset,
                        message=f"counter {key!r} (via .{method}) is not registered "
                                "in WELL_KNOWN_COUNTERS",
                        hint="register it in repro.metrics.counters (timers under "
                             "time_<key>, maxima may use the max_<key> alias) and "
                             "regenerate docs/counters.md")
            else:
                yield Diagnostic(
                    rule="dynamic-counter-key", path=ctx.rel,
                    line=key_node.lineno, col=key_node.col_offset,
                    message=f"counter key passed to .{method} is not a string "
                            "literal, so registry membership cannot be checked "
                            "statically",
                    hint="use a literal key, or suppress with a comment explaining "
                         "why the key set is closed")

    # ------------------------------------------------------------------ #
    def dead_counters(self) -> List[RegistryEntry]:
        """Registered counters no recording call site keeps alive."""
        return [entry for name, entry in self.registry.items() if name not in self.live]

    def finalize(self, contexts: Sequence[FileContext]) -> Iterable[Diagnostic]:
        # Only meaningful when the registry file itself was part of the scan:
        # linting a single fixture must not declare the whole registry dead.
        if not any(ctx.rel == self.registry_rel for ctx in contexts):
            return
        for entry in self.dead_counters():
            yield Diagnostic(
                rule="dead-counter", path=self.registry_rel,
                line=entry.line, col=0,
                message=f"registered counter {entry.name!r} is never recorded "
                        "anywhere in the scanned tree",
                hint="delete the registry entry (and regenerate docs/counters.md) "
                     "or cover the counter with a test")
