#!/usr/bin/env python
"""Generate ``docs/counters.md`` from the ``WELL_KNOWN_COUNTERS`` registry.

The registry in :mod:`repro.metrics.counters` is the single source of truth
for every counter name the engines agree on (``MetricsRecorder(strict=True)``
rejects anything else, and the cross-driver harness drives every driver
strict).  This script renders it as a markdown glossary so dashboards and
benchmark readers do not have to read the source; a tier-1 test
(``tests/metrics/test_counters_doc.py``) regenerates the document and fails
when the committed file drifts from the registry.

Usage::

    PYTHONPATH=src python tools/gen_counters_doc.py          # (re)write docs/counters.md
    PYTHONPATH=src python tools/gen_counters_doc.py --check  # exit 1 on drift (CI)
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.metrics.counters import WELL_KNOWN_COUNTERS  # noqa: E402

OUTPUT = REPO_ROOT / "docs" / "counters.md"

HEADER = """\
<!-- GENERATED FILE - do not edit by hand.
     Regenerate with: PYTHONPATH=src python tools/gen_counters_doc.py -->

# Counters glossary

Every counter, maximum and timer the engines record, generated from
`repro.metrics.counters.WELL_KNOWN_COUNTERS` — the registry is *complete*: a
`MetricsRecorder(strict=True)` rejects recording under any other key, and the
cross-driver differential harness drives every driver strict, so this
glossary cannot drift from the code (see `tests/metrics/test_counters_doc.py`).

Conventions: plain names accumulate via `inc()`; `max_`-prefixed names keep
the maximum observed value via `observe_max()`; `time_`-prefixed names
accumulate wall-clock seconds (informational only — the headline
measurements are model quantities, never timers).

| counter | measures |
| --- | --- |
"""


def render() -> str:
    """The full markdown document, one table row per registered counter."""
    rows = [
        f"| `{name}` | {description} |"
        for name, description in WELL_KNOWN_COUNTERS.items()
    ]
    return HEADER + "\n".join(rows) + "\n"


def main(argv: list) -> int:
    text = render()
    if "--check" in argv:
        if not OUTPUT.exists() or OUTPUT.read_text() != text:
            print(
                f"{OUTPUT} is out of sync with WELL_KNOWN_COUNTERS; "
                "regenerate with: PYTHONPATH=src python tools/gen_counters_doc.py",
                file=sys.stderr,
            )
            return 1
        print(f"{OUTPUT} is in sync ({len(WELL_KNOWN_COUNTERS)} counters)")
        return 0
    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT.write_text(text)
    print(f"wrote {OUTPUT} ({len(WELL_KNOWN_COUNTERS)} counters)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
