"""Repo tooling: benchmark trajectory diffing, docs generation, repro-lint.

This package intentionally depends on the standard library only — CI's lint
job runs it on a clean checkout with no installs (not even numpy).
"""
